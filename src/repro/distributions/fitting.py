"""Distribution fitting procedures used in Section 2 of the paper.

Three fitting philosophies appear in the paper and are all implemented:

* **Least-squares pdf fit** (Färber): minimise the squared error between
  a candidate density and the experimental histogram
  (:func:`fit_extreme_least_squares`, :func:`fit_lognormal_least_squares`).
* **Moment fit**: match the sample mean and CoV
  (:func:`fit_by_moments`, and the ``from_mean_cov`` constructors of the
  individual distributions).  Section 2.3.2 derives ``K = 28`` for the
  Erlang order this way.
* **Tail fit** (the paper's own contribution for the burst sizes):
  choose the Erlang order whose tail distribution function tracks the
  experimental tail best over a range of exceedance probabilities
  (:func:`fit_erlang_tail`); Figure 1 shows this gives ``K`` between 15
  and 20.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from ..errors import FittingError
from .base import Distribution
from .deterministic import Deterministic
from .empirical import Empirical
from .erlang import Erlang
from .extreme import Extreme
from .lognormal import Lognormal, Normal
from .weibull import Weibull

__all__ = [
    "FitResult",
    "sample_moments",
    "fit_extreme_least_squares",
    "fit_lognormal_least_squares",
    "fit_normal_least_squares",
    "fit_by_moments",
    "fit_deterministic",
    "fit_erlang_tail",
    "fit_erlang_cov",
    "rank_candidate_fits",
]


@dataclass
class FitResult:
    """Outcome of a fitting procedure.

    Attributes
    ----------
    distribution:
        The fitted distribution object.
    error:
        The value of the objective that was minimised (sum of squared
        pdf errors, tail mismatch, ... depending on the method).
    method:
        Short identifier of the fitting method.
    details:
        Free-form extra information (e.g. the candidate orders examined).
    """

    distribution: Distribution
    error: float
    method: str
    details: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.distribution.name


def sample_moments(samples: Sequence[float]) -> Tuple[float, float]:
    """Return ``(mean, cov)`` of a sample, the summary used in Tables 1-3."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise FittingError("cannot compute moments of an empty sample")
    mean = float(np.mean(data))
    if data.size < 2 or mean == 0.0:
        return mean, 0.0
    std = float(np.std(data, ddof=1))
    return mean, std / abs(mean)


def _histogram(samples: Sequence[float], bins: Optional[int]) -> Tuple[np.ndarray, np.ndarray]:
    empirical = Empirical(samples)
    return empirical.histogram(bins=bins)


def _least_squares_pdf(
    samples: Sequence[float],
    build: "callable",
    initial: Sequence[float],
    bounds: Sequence[Tuple[float, float]],
    method_name: str,
    bins: Optional[int] = None,
) -> FitResult:
    """Generic least-squares fit of a parametric pdf against a histogram."""
    centers, density = _histogram(samples, bins)
    if centers.size < 3:
        raise FittingError("not enough distinct histogram bins for a least-squares fit")

    def objective(params: np.ndarray) -> float:
        try:
            dist = build(*params)
        except Exception:
            return 1e12
        model = np.asarray(dist.pdf(centers), dtype=float)
        return float(np.sum((model - density) ** 2))

    result = optimize.minimize(
        objective,
        x0=np.asarray(initial, dtype=float),
        bounds=bounds,
        method="L-BFGS-B",
    )
    if not np.all(np.isfinite(result.x)):
        raise FittingError(f"{method_name} fit diverged")
    dist = build(*result.x)
    return FitResult(
        distribution=dist,
        error=float(result.fun),
        method=method_name,
        details={"params": [float(v) for v in result.x], "bins": centers.size},
    )


def fit_extreme_least_squares(
    samples: Sequence[float], bins: Optional[int] = None
) -> FitResult:
    """Fit ``Ext(a, b)`` by least squares on the histogram (Färber's method)."""
    mean, cov = sample_moments(samples)
    start = Extreme.from_mean_cov(mean, max(cov, 1e-3))
    return _least_squares_pdf(
        samples,
        Extreme,
        initial=[start.location, start.scale],
        bounds=[(None, None), (1e-9, None)],
        method_name="least-squares-pdf(extreme)",
        bins=bins,
    )


def fit_lognormal_least_squares(
    samples: Sequence[float], bins: Optional[int] = None
) -> FitResult:
    """Fit an (unshifted) lognormal density by least squares on the histogram."""
    mean, cov = sample_moments(samples)
    start = Lognormal.from_mean_cov(mean, max(cov, 1e-3))
    return _least_squares_pdf(
        samples,
        Lognormal,
        initial=[start.mu, start.sigma],
        bounds=[(None, None), (1e-6, None)],
        method_name="least-squares-pdf(lognormal)",
        bins=bins,
    )


def fit_normal_least_squares(
    samples: Sequence[float], bins: Optional[int] = None
) -> FitResult:
    """Fit a normal density by least squares on the histogram."""
    mean, cov = sample_moments(samples)
    std = max(mean * max(cov, 1e-3), 1e-6)
    return _least_squares_pdf(
        samples,
        Normal,
        initial=[mean, std],
        bounds=[(None, None), (1e-9, None)],
        method_name="least-squares-pdf(normal)",
        bins=bins,
    )


def fit_by_moments(samples: Sequence[float], family: str) -> FitResult:
    """Fit a distribution of the named family by matching mean and CoV.

    ``family`` is one of ``"extreme"``, ``"erlang"``, ``"lognormal"``,
    ``"weibull"``, ``"normal"`` or ``"deterministic"``.
    """
    mean, cov = sample_moments(samples)
    family = family.lower()
    if family == "deterministic":
        dist: Distribution = Deterministic(mean)
    elif family == "extreme":
        dist = Extreme.from_mean_cov(mean, max(cov, 1e-6))
    elif family == "erlang":
        dist = Erlang.from_mean_cov(mean, max(cov, 1e-6))
    elif family == "lognormal":
        dist = Lognormal.from_mean_cov(mean, max(cov, 1e-6))
    elif family == "weibull":
        dist = Weibull.from_mean_cov(mean, max(cov, 1e-6))
    elif family == "normal":
        dist = Normal(mean, max(mean * max(cov, 1e-6), 1e-9))
    else:
        raise FittingError(f"unknown distribution family {family!r}")
    return FitResult(distribution=dist, error=0.0, method=f"moments({family})",
                     details={"mean": mean, "cov": cov})


def fit_deterministic(samples: Sequence[float]) -> FitResult:
    """Approximate a low-variance sample by ``Det(mean)``.

    This mirrors the paper's choice of ``Det(40)`` for the client
    inter-arrival time whose CoV is small.
    """
    mean, cov = sample_moments(samples)
    return FitResult(
        distribution=Deterministic(mean),
        error=cov,
        method="deterministic",
        details={"mean": mean, "cov": cov},
    )


def fit_erlang_cov(samples: Sequence[float]) -> FitResult:
    """Erlang order chosen by matching the CoV (Section 2.3.2 first approach)."""
    mean, cov = sample_moments(samples)
    if cov <= 0.0:
        raise FittingError("cannot fit an Erlang order to a zero-CoV sample")
    dist = Erlang.from_mean_cov(mean, cov)
    return FitResult(
        distribution=dist,
        error=abs(dist.cov - cov),
        method="erlang-cov",
        details={"mean": mean, "cov": cov, "order": dist.order},
    )


def fit_erlang_tail(
    samples: Sequence[float],
    orders: Optional[Iterable[int]] = None,
    tail_range: Tuple[float, float] = (1e-3, 5e-1),
) -> FitResult:
    """Choose the Erlang order by fitting the tail distribution function.

    This is the paper's own approach for the burst-size distribution
    (Section 2.3.2, Figure 1): the mean is pinned to the sample mean and
    the order ``K`` is selected so the Erlang tail tracks the empirical
    tail over the exceedance-probability window ``tail_range``.  The
    error metric is the mean squared difference of ``log10`` tails
    evaluated at the empirical quantiles of that window, which mimics a
    visual fit on the log-scale TDF plot of Figure 1.
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size < 10:
        raise FittingError("tail fitting needs at least 10 samples")
    mean, cov = sample_moments(data)
    if mean <= 0.0:
        raise FittingError("tail fitting requires positive-mean samples")
    if orders is None:
        guess = max(1, int(round(1.0 / max(cov, 1e-3) ** 2)))
        orders = range(1, max(guess * 2, 30) + 1)
    empirical = Empirical(data)

    lo, hi = tail_range
    probs = np.logspace(math.log10(max(lo, 1.5 / data.size)), math.log10(hi), 30)
    x_grid = np.asarray(empirical.quantile(1.0 - probs), dtype=float)

    best: Optional[Tuple[float, Erlang]] = None
    examined: List[Tuple[int, float]] = []
    for order in orders:
        candidate = Erlang.from_mean_order(mean, int(order))
        model_tail = np.asarray(candidate.tail(x_grid), dtype=float)
        model_tail = np.clip(model_tail, 1e-300, 1.0)
        err = float(np.mean((np.log10(model_tail) - np.log10(probs)) ** 2))
        examined.append((int(order), err))
        if best is None or err < best[0]:
            best = (err, candidate)
    assert best is not None
    return FitResult(
        distribution=best[1],
        error=best[0],
        method="erlang-tail",
        details={
            "mean": mean,
            "cov": cov,
            "order": best[1].order,
            "examined": examined,
        },
    )


def rank_candidate_fits(samples: Sequence[float], bins: Optional[int] = None) -> List[FitResult]:
    """Fit all parametric candidates by least squares and rank them.

    Reproduces the comparison Färber reports: extreme value first, with
    lognormal and Weibull as acceptable alternatives.  Candidates whose
    fit fails on the given data are silently skipped.
    """
    fits: List[FitResult] = []
    for fitter in (
        fit_extreme_least_squares,
        fit_lognormal_least_squares,
        fit_normal_least_squares,
    ):
        try:
            fits.append(fitter(samples, bins=bins))
        except (FittingError, ValueError):
            continue
    try:
        fits.append(fit_by_moments(samples, "weibull"))
    except (FittingError, ValueError):
        pass
    if not fits:
        raise FittingError("no candidate distribution could be fitted to the sample")
    fits.sort(key=lambda fit: fit.error)
    return fits
