"""Lognormal and normal distributions (optionally shifted).

Lang et al. model Half-Life server packet sizes with (map-dependent)
lognormal distributions and note that client packet sizes are fit
equally well by normal and lognormal distributions.  Färber also
mentions that *shifted* lognormal distributions fit the Counter-Strike
data acceptably, hence the optional ``shift`` parameter.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import stats

from ..errors import ParameterError
from .base import ArrayLike, ComplexLike, Distribution, as_array

__all__ = ["Lognormal", "Normal"]


class Lognormal(Distribution):
    """(Shifted) lognormal distribution.

    ``X = shift + exp(mu + sigma * Z)`` with ``Z`` standard normal.
    """

    def __init__(self, mu: float, sigma: float, shift: float = 0.0) -> None:
        if sigma <= 0.0:
            raise ParameterError(f"lognormal sigma must be positive, got {sigma!r}")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.shift = float(shift)
        if self.shift:
            self.name = f"Lognormal({self.mu:g}, {self.sigma:g}; shift={self.shift:g})"
        else:
            self.name = f"Lognormal({self.mu:g}, {self.sigma:g})"

    # -- moments -------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.shift + math.exp(self.mu + 0.5 * self.sigma**2)

    @property
    def variance(self) -> float:
        return (math.exp(self.sigma**2) - 1.0) * math.exp(2.0 * self.mu + self.sigma**2)

    # -- probabilities -------------------------------------------------
    def _frozen(self):
        return stats.lognorm(s=self.sigma, scale=math.exp(self.mu), loc=self.shift)

    def pdf(self, x: ArrayLike) -> ArrayLike:
        out = self._frozen().pdf(as_array(x))
        return out if out.ndim else float(out)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        out = self._frozen().cdf(as_array(x))
        return out if out.ndim else float(out)

    def tail(self, x: ArrayLike) -> ArrayLike:
        out = self._frozen().sf(as_array(x))
        return out if out.ndim else float(out)

    def quantile(self, q: ArrayLike) -> ArrayLike:
        q = as_array(q)
        if np.any((q <= 0.0) | (q >= 1.0)):
            raise ParameterError("quantile levels must lie in (0, 1)")
        out = self._frozen().ppf(q)
        return out if out.ndim else float(out)

    # -- sampling ------------------------------------------------------
    def sample(
        self, size: Optional[int] = None, rng: Optional[np.random.Generator] = None
    ) -> ArrayLike:
        rng = self._rng(rng)
        return self.shift + rng.lognormal(self.mu, self.sigma, size=size)

    # -- constructors --------------------------------------------------
    @classmethod
    def from_mean_cov(cls, mean: float, cov: float, shift: float = 0.0) -> "Lognormal":
        """Lognormal with the requested mean and CoV (after shifting)."""
        effective_mean = mean - shift
        if effective_mean <= 0.0:
            raise ParameterError("mean - shift must be positive")
        if cov <= 0.0:
            raise ParameterError("CoV must be positive")
        std = mean * cov
        ratio = 1.0 + (std / effective_mean) ** 2
        sigma = math.sqrt(math.log(ratio))
        mu = math.log(effective_mean) - 0.5 * sigma**2
        return cls(mu, sigma, shift=shift)


class Normal(Distribution):
    """Normal distribution, used by Lang et al. for client packet sizes."""

    def __init__(self, mean: float, std: float) -> None:
        if std <= 0.0:
            raise ParameterError(f"normal std must be positive, got {std!r}")
        self._mean = float(mean)
        self._std = float(std)
        self.name = f"N({self._mean:g}, {self._std:g})"

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._std**2

    def pdf(self, x: ArrayLike) -> ArrayLike:
        out = stats.norm.pdf(as_array(x), loc=self._mean, scale=self._std)
        return out if out.ndim else float(out)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        out = stats.norm.cdf(as_array(x), loc=self._mean, scale=self._std)
        return out if out.ndim else float(out)

    def tail(self, x: ArrayLike) -> ArrayLike:
        out = stats.norm.sf(as_array(x), loc=self._mean, scale=self._std)
        return out if out.ndim else float(out)

    def quantile(self, q: ArrayLike) -> ArrayLike:
        q = as_array(q)
        if np.any((q <= 0.0) | (q >= 1.0)):
            raise ParameterError("quantile levels must lie in (0, 1)")
        out = stats.norm.ppf(q, loc=self._mean, scale=self._std)
        return out if out.ndim else float(out)

    def sample(
        self, size: Optional[int] = None, rng: Optional[np.random.Generator] = None
    ) -> ArrayLike:
        rng = self._rng(rng)
        return rng.normal(self._mean, self._std, size=size)

    def mgf(self, s: ComplexLike) -> ComplexLike:
        """``E[e^{sX}] = exp(mu s + sigma^2 s^2 / 2)`` (vectorized).

        The quadratic exponent overflows for very large real ``|s|`` —
        exactly why the inversion's atom-at-zero probe is bounded.
        """
        return np.exp(self._mean * s + 0.5 * (self._std * s) ** 2)
