"""(Shifted) Weibull distribution.

Färber notes that shifted Weibull distributions also fit the
Counter-Strike traffic acceptably; it is included so the fitting module
can rank it against the extreme-value and lognormal candidates.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import optimize, special, stats

from ..errors import ParameterError
from .base import ArrayLike, Distribution, as_array

__all__ = ["Weibull"]


class Weibull(Distribution):
    """Weibull distribution with shape ``k``, scale ``lam`` and a shift."""

    def __init__(self, shape: float, scale: float, shift: float = 0.0) -> None:
        if shape <= 0.0 or scale <= 0.0:
            raise ParameterError("Weibull shape and scale must be positive")
        self.shape = float(shape)
        self.scale = float(scale)
        self.shift = float(shift)
        if self.shift:
            self.name = f"Weibull({self.shape:g}, {self.scale:g}; shift={self.shift:g})"
        else:
            self.name = f"Weibull({self.shape:g}, {self.scale:g})"

    # -- moments -------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.shift + self.scale * special.gamma(1.0 + 1.0 / self.shape)

    @property
    def variance(self) -> float:
        g1 = special.gamma(1.0 + 1.0 / self.shape)
        g2 = special.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1**2)

    # -- probabilities -------------------------------------------------
    def _frozen(self):
        return stats.weibull_min(c=self.shape, scale=self.scale, loc=self.shift)

    def pdf(self, x: ArrayLike) -> ArrayLike:
        out = self._frozen().pdf(as_array(x))
        return out if out.ndim else float(out)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        out = self._frozen().cdf(as_array(x))
        return out if out.ndim else float(out)

    def tail(self, x: ArrayLike) -> ArrayLike:
        out = self._frozen().sf(as_array(x))
        return out if out.ndim else float(out)

    def quantile(self, q: ArrayLike) -> ArrayLike:
        q = as_array(q)
        if np.any((q <= 0.0) | (q >= 1.0)):
            raise ParameterError("quantile levels must lie in (0, 1)")
        out = self._frozen().ppf(q)
        return out if out.ndim else float(out)

    # -- sampling ------------------------------------------------------
    def sample(
        self, size: Optional[int] = None, rng: Optional[np.random.Generator] = None
    ) -> ArrayLike:
        rng = self._rng(rng)
        return self.shift + self.scale * rng.weibull(self.shape, size=size)

    # -- constructors --------------------------------------------------
    @classmethod
    def from_mean_cov(cls, mean: float, cov: float, shift: float = 0.0) -> "Weibull":
        """Weibull matching a target mean and CoV (after shifting).

        The shape ``k`` solving ``CoV^2 = Gamma(1+2/k)/Gamma(1+1/k)^2 - 1``
        is found numerically; the scale then follows from the mean.
        """
        effective_mean = mean - shift
        if effective_mean <= 0.0:
            raise ParameterError("mean - shift must be positive")
        if cov <= 0.0:
            raise ParameterError("CoV must be positive")
        target = (mean * cov / effective_mean) ** 2

        def cov2(k: float) -> float:
            g1 = special.gamma(1.0 + 1.0 / k)
            g2 = special.gamma(1.0 + 2.0 / k)
            return g2 / g1**2 - 1.0

        lo, hi = 0.05, 200.0
        if not (cov2(hi) <= target <= cov2(lo)):
            raise ParameterError(
                f"target CoV {math.sqrt(target):.3f} out of reachable Weibull range"
            )
        shape = optimize.brentq(lambda k: cov2(k) - target, lo, hi)
        scale = effective_mean / special.gamma(1.0 + 1.0 / shape)
        return cls(shape, scale, shift=shift)
