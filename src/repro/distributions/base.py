"""Common interface for the distributions used throughout the library.

The paper models packet sizes, inter-arrival times and burst sizes with a
small zoo of distributions (deterministic, extreme/Gumbel, Erlang,
lognormal, ...).  Each of them is exposed here behind the same small
interface so that the traffic generators, the fitting code and the
queueing models can be written generically.

Every distribution implements:

* moments (:attr:`mean`, :attr:`variance`, :attr:`std`, :attr:`cov`),
* densities and probabilities (:meth:`pdf`, :meth:`cdf`, :meth:`tail`),
* the quantile function (:meth:`quantile`),
* random sampling (:meth:`sample`), and
* where it exists in closed form, the moment generating function
  (:meth:`mgf`), which is the workhorse of the queueing analysis.
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Union

import numpy as np

from ..errors import ParameterError

__all__ = ["Distribution", "ArrayLike", "ComplexLike", "as_array"]

ArrayLike = Union[float, np.ndarray]

#: Scalar complex argument or a complex ndarray of any shape; MGF
#: implementations must be numpy-vectorized so the Euler inversion can
#: evaluate all of its abscissae in a single call.
ComplexLike = Union[complex, np.ndarray]


def as_array(x: ArrayLike) -> np.ndarray:
    """Coerce a scalar or array argument into a float ndarray."""
    return np.asarray(x, dtype=float)


class Distribution(abc.ABC):
    """Abstract base class for univariate distributions."""

    #: Human readable name used in tables (e.g. ``"Ext(120, 36)"``).
    name: str = "distribution"

    # ------------------------------------------------------------------
    # Moments
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """The first moment of the distribution."""

    @property
    @abc.abstractmethod
    def variance(self) -> float:
        """The central second moment of the distribution."""

    @property
    def std(self) -> float:
        """The standard deviation."""
        return math.sqrt(max(self.variance, 0.0))

    @property
    def cov(self) -> float:
        """The coefficient of variation (std / mean).

        The paper characterises every measured traffic quantity by its
        mean and CoV, so the CoV is promoted to a first-class property.
        """
        mean = self.mean
        if mean == 0.0:
            raise ParameterError("coefficient of variation undefined for zero mean")
        return self.std / abs(mean)

    # ------------------------------------------------------------------
    # Probabilities
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def pdf(self, x: ArrayLike) -> ArrayLike:
        """Probability density (or mass concentrated via a Dirac pulse)."""

    @abc.abstractmethod
    def cdf(self, x: ArrayLike) -> ArrayLike:
        """Cumulative distribution function ``P(X <= x)``."""

    def tail(self, x: ArrayLike) -> ArrayLike:
        """Tail distribution function (TDF) ``P(X > x)``.

        Figure 1 of the paper plots tail distribution functions; the
        default implementation is ``1 - cdf`` but subclasses override it
        when a numerically better expression exists.
        """
        return 1.0 - self.cdf(x)

    @abc.abstractmethod
    def quantile(self, q: ArrayLike) -> ArrayLike:
        """Quantile function (inverse CDF)."""

    # ------------------------------------------------------------------
    # Sampling and transforms
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def sample(
        self, size: Optional[int] = None, rng: Optional[np.random.Generator] = None
    ) -> ArrayLike:
        """Draw ``size`` i.i.d. samples (a scalar when ``size`` is ``None``)."""

    def mgf(self, s: ComplexLike) -> ComplexLike:
        """Moment generating function ``E[exp(s X)]`` where defined.

        Subclasses that have a closed-form MGF override this; others
        raise :class:`NotImplementedError`.  Implementations accept a
        scalar ``complex`` or a complex ndarray and evaluate elementwise
        (the numerical inversion batches all Euler abscissae — and, for
        :func:`repro.core.inversion.tails_from_mgf`, all grid points —
        into one such array call).
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no closed-form moment generating function"
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
        return rng if rng is not None else np.random.default_rng()

    def summary(self) -> dict:
        """Return a mean / CoV summary dictionary (used to print tables)."""
        return {"name": self.name, "mean": self.mean, "cov": self.cov}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
