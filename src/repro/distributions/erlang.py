"""Erlang distribution ``Erlang(K, lambda)``.

The server burst sizes are modelled in the paper by an Erlang
distribution of order ``K`` and rate ``lam`` (the paper's shape
parameter λ): the sum of ``K`` i.i.d. exponentials with rate ``lam``.
Its mean is ``K / lam`` and its variance ``K / lam**2``, so the
coefficient of variation is ``1 / sqrt(K)`` and the order can be chosen
by fitting either the CoV or the tail (Section 2.3.2, Figure 1).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import special, stats

from ..errors import ParameterError
from .base import ArrayLike, ComplexLike, Distribution, as_array

__all__ = ["Erlang", "Exponential"]


class Erlang(Distribution):
    """Erlang distribution of integer order ``order`` and rate ``rate``."""

    def __init__(self, order: int, rate: float) -> None:
        if int(order) != order or order < 1:
            raise ParameterError(f"Erlang order must be a positive integer, got {order!r}")
        if rate <= 0.0:
            raise ParameterError(f"Erlang rate must be positive, got {rate!r}")
        self.order = int(order)
        self.rate = float(rate)
        self.name = f"E({self.order}, {self.rate:g})"

    # -- moments -------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.order / self.rate

    @property
    def variance(self) -> float:
        return self.order / self.rate**2

    @property
    def cov(self) -> float:
        return 1.0 / math.sqrt(self.order)

    # -- probabilities -------------------------------------------------
    def pdf(self, x: ArrayLike) -> ArrayLike:
        x = as_array(x)
        out = stats.gamma.pdf(x, a=self.order, scale=1.0 / self.rate)
        return out if out.ndim else float(out)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        x = as_array(x)
        out = stats.gamma.cdf(x, a=self.order, scale=1.0 / self.rate)
        return out if out.ndim else float(out)

    def tail(self, x: ArrayLike) -> ArrayLike:
        """``P(X > x) = exp(-rate*x) * sum_{i<K} (rate*x)^i / i!``.

        Implemented through the regularised upper incomplete gamma
        function, which is numerically accurate far into the tail (the
        paper plots tails down to 1e-6 in Figure 1).
        """
        x = as_array(x)
        out = special.gammaincc(self.order, self.rate * np.maximum(x, 0.0))
        out = np.where(x < 0.0, 1.0, out)
        return out if out.ndim else float(out)

    def quantile(self, q: ArrayLike) -> ArrayLike:
        q = as_array(q)
        if np.any((q < 0.0) | (q >= 1.0)):
            raise ParameterError("quantile levels must lie in [0, 1)")
        out = stats.gamma.ppf(q, a=self.order, scale=1.0 / self.rate)
        return out if out.ndim else float(out)

    # -- sampling ------------------------------------------------------
    def sample(
        self, size: Optional[int] = None, rng: Optional[np.random.Generator] = None
    ) -> ArrayLike:
        rng = self._rng(rng)
        return rng.gamma(shape=self.order, scale=1.0 / self.rate, size=size)

    # -- transform -----------------------------------------------------
    def mgf(self, s: ComplexLike) -> ComplexLike:
        """``E[e^{sX}] = (rate / (rate - s))^K`` for ``Re(s) < rate``.

        Vectorized: ``s`` may be a complex ndarray of any shape.
        """
        return (self.rate / (self.rate - s)) ** self.order

    # -- constructors --------------------------------------------------
    @classmethod
    def from_mean_order(cls, mean: float, order: int) -> "Erlang":
        """Erlang of a given order with the rate chosen to match ``mean``.

        This is how Figure 1 builds candidate fits: the mean is pinned to
        the measured mean burst size and only the order varies.
        """
        if mean <= 0.0:
            raise ParameterError("mean must be positive")
        return cls(order, order / float(mean))

    @classmethod
    def from_mean_cov(cls, mean: float, cov: float) -> "Erlang":
        """Erlang whose order matches the CoV (``K = round(1 / cov**2)``).

        Following Section 2.3.2: fitting the CoV of 0.19 gives ``K = 28``.
        """
        if mean <= 0.0 or cov <= 0.0:
            raise ParameterError("mean and CoV must be positive")
        order = max(1, int(round(1.0 / cov**2)))
        return cls.from_mean_order(mean, order)


class Exponential(Erlang):
    """Exponential distribution (Erlang of order 1)."""

    def __init__(self, rate: float) -> None:
        super().__init__(1, rate)
        self.name = f"Exp({self.rate:g})"
