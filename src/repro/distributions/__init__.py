"""Distributions used by the traffic models and queueing analysis.

The module exposes the small set of parametric families the paper works
with (``Det``, ``Ext``, ``Erlang``, lognormal, Weibull, normal), an
empirical distribution for trace analysis, finite mixtures, and the
fitting procedures of Section 2 (least-squares pdf fit, moment fit and
tail fit).
"""

from .base import Distribution
from .deterministic import Deterministic
from .empirical import Empirical
from .erlang import Erlang, Exponential
from .extreme import Extreme, EULER_MASCHERONI
from .lognormal import Lognormal, Normal
from .mixture import Mixture
from .weibull import Weibull
from .fitting import (
    FitResult,
    fit_by_moments,
    fit_deterministic,
    fit_erlang_cov,
    fit_erlang_tail,
    fit_extreme_least_squares,
    fit_lognormal_least_squares,
    fit_normal_least_squares,
    rank_candidate_fits,
    sample_moments,
)

__all__ = [
    "Distribution",
    "Deterministic",
    "Empirical",
    "Erlang",
    "Exponential",
    "Extreme",
    "EULER_MASCHERONI",
    "Lognormal",
    "Normal",
    "Mixture",
    "Weibull",
    "FitResult",
    "fit_by_moments",
    "fit_deterministic",
    "fit_erlang_cov",
    "fit_erlang_tail",
    "fit_extreme_least_squares",
    "fit_lognormal_least_squares",
    "fit_normal_least_squares",
    "rank_candidate_fits",
    "sample_moments",
]
