"""Experiment Figure 4 — impact of the burst inter-arrival time on the RTT.

Figure 4 plots the 99.999% RTT quantile against the downlink load for
``P_S = 125`` byte, ``K = 9`` and the two tick intervals ``T = 40`` ms
and ``T = 60`` ms.  The paper notes that, since the downstream component
dominates, the RTT is virtually proportional to ``T``: the 60 ms curve
sits about 3/2 above the 40 ms curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.rtt import DEFAULT_QUANTILE
from ..engine import Engine
from ..scenarios import Scenario, SweepSeries, default_load_grid
from .report import format_series

__all__ = ["Figure4Result", "run_figure4", "format_figure4"]

#: The tick intervals of the published figure (seconds).
PAPER_TICKS_S = (0.040, 0.060)


@dataclass
class Figure4Result:
    """The regenerated Figure 4 curves (RTT quantile vs. load per tick)."""

    loads: np.ndarray
    series_by_tick_ms: Dict[int, SweepSeries]
    probability: float
    scenario: Scenario

    def rtt_ms(self, tick_ms: int) -> List[float]:
        """RTT quantile curve (ms) for one tick interval."""
        return self.series_by_tick_ms[tick_ms].rtt_ms()

    def rtt_ratio(self) -> np.ndarray:
        """Pointwise ratio of the 60 ms curve over the 40 ms curve.

        The deterministic (serialization) part is removed before taking
        the ratio, because the proportionality claim of the paper
        concerns the queueing part of the RTT.
        """
        if sorted(self.series_by_tick_ms) != [40, 60]:
            raise KeyError("rtt_ratio() requires the 40 ms and 60 ms series")
        serialization_ms = 1e3 * self.scenario.model_at_load(0.5).serialization_delay_s
        rtt40 = np.asarray(self.rtt_ms(40)) - serialization_ms
        rtt60 = np.asarray(self.rtt_ms(60)) - serialization_ms
        return rtt60 / rtt40


def run_figure4(
    loads: Optional[Sequence[float]] = None,
    tick_intervals_s: Sequence[float] = PAPER_TICKS_S,
    server_packet_bytes: float = 125.0,
    erlang_order: int = 9,
    probability: float = DEFAULT_QUANTILE,
    method: str = "inversion",
) -> Figure4Result:
    """Regenerate the Figure 4 curves."""
    if loads is None:
        loads = default_load_grid()
    loads = np.asarray(list(loads), dtype=float)
    base = Scenario(server_packet_bytes=server_packet_bytes, erlang_order=erlang_order)
    series_by_tick_ms: Dict[int, SweepSeries] = {}
    for tick in tick_intervals_s:
        engine = Engine(
            base.with_tick_interval(float(tick)), probability=probability, method=method
        )
        tick_ms = int(round(tick * 1e3))
        series_by_tick_ms[tick_ms] = engine.sweep(loads, label=f"IAT={tick_ms}ms")
    return Figure4Result(
        loads=loads,
        series_by_tick_ms=series_by_tick_ms,
        probability=probability,
        scenario=base,
    )


def format_figure4(result: Figure4Result) -> str:
    """Text rendering of the Figure 4 series."""
    series = {
        f"IAT={tick}ms RTT (ms)": s.rtt_ms()
        for tick, s in sorted(result.series_by_tick_ms.items())
    }
    header = (
        f"Figure 4 - P_S = {result.scenario.server_packet_bytes:.0f} byte, "
        f"K = {result.scenario.erlang_order}, {100 * result.probability:.3f}% quantile\n"
    )
    return header + format_series("load", [float(v) for v in result.loads], series)
