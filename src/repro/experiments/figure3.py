"""Experiment Figure 3 — impact of the Erlang order K on the RTT quantile.

Figure 3 plots the 99.999% RTT quantile against the downlink load for
``P_S = 125`` byte, ``T = 60`` ms and ``K`` in {2, 9, 20}.  The paper's
qualitative findings: the RTT grows linearly at low load (where the
packet-position delay dominates), diverges towards the ``rho_d = 1``
asymptote, and is strongly ordered in ``K`` (smaller ``K`` — burstier
traffic — gives a much larger RTT at the same load).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.rtt import DEFAULT_QUANTILE
from ..engine import Engine
from ..scenarios import Scenario, SweepSeries, default_load_grid
from .report import format_series

__all__ = ["Figure3Result", "run_figure3", "format_figure3"]

#: The Erlang orders of the published figure.
PAPER_ORDERS = (2, 9, 20)


@dataclass
class Figure3Result:
    """The regenerated Figure 3 curves (RTT quantile vs. downlink load)."""

    loads: np.ndarray
    series_by_order: Dict[int, SweepSeries]
    probability: float
    scenario: Scenario

    def rtt_ms(self, order: int) -> List[float]:
        """RTT quantile curve (ms) for one Erlang order."""
        return self.series_by_order[order].rtt_ms()

    def rtt_at_load(self, order: int, load: float) -> float:
        """Interpolated RTT quantile (ms) at an arbitrary load."""
        return self.series_by_order[order].interpolate_rtt_ms(load)


def run_figure3(
    loads: Optional[Sequence[float]] = None,
    orders: Sequence[int] = PAPER_ORDERS,
    server_packet_bytes: float = 125.0,
    tick_interval_s: float = 0.060,
    probability: float = DEFAULT_QUANTILE,
    method: str = "inversion",
) -> Figure3Result:
    """Regenerate the Figure 3 curves."""
    if loads is None:
        loads = default_load_grid()
    loads = np.asarray(list(loads), dtype=float)
    base = Scenario(
        server_packet_bytes=server_packet_bytes, tick_interval_s=tick_interval_s
    )
    series_by_order: Dict[int, SweepSeries] = {}
    for order in orders:
        engine = Engine(
            base.with_erlang_order(int(order)), probability=probability, method=method
        )
        series_by_order[int(order)] = engine.sweep(loads, label=f"K={order}")
    return Figure3Result(
        loads=loads,
        series_by_order=series_by_order,
        probability=probability,
        scenario=base,
    )


def format_figure3(result: Figure3Result) -> str:
    """Text rendering of the Figure 3 series."""
    series = {
        f"K={order} RTT (ms)": s.rtt_ms() for order, s in sorted(result.series_by_order.items())
    }
    header = (
        f"Figure 3 - P_S = {result.scenario.server_packet_bytes:.0f} byte, "
        f"IAT = {result.scenario.tick_interval_s * 1e3:.0f} ms, "
        f"{100 * result.probability:.3f}% quantile\n"
    )
    return header + format_series("load", [float(v) for v in result.loads], series)
