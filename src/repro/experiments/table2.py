"""Experiment Table 2 — Half-Life traffic characteristics (Lang et al.).

Table 2 reports deterministic tick intervals (60 ms server, 41 ms
client), map-dependent lognormal server packet sizes and 60-90-byte
client packets.  The reproduction generates a synthetic Half-Life
session per map, re-measures the statistics and re-fits the lognormal /
deterministic approximations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..distributions import (
    fit_deterministic,
    fit_lognormal_least_squares,
    sample_moments,
)
from ..traffic import bursts as burst_analysis
from ..traffic.games import half_life
from .report import format_table

__all__ = ["Table2Row", "Table2Result", "run_table2", "format_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One per-map row of the regenerated Table 2."""

    game_map: str
    server_iat_mean_ms: float
    server_iat_fit: str
    server_packet_mean_bytes: float
    server_packet_fit: str
    client_iat_mean_ms: float
    client_iat_fit: str
    client_packet_mean_bytes: float
    client_packet_min_bytes: float
    client_packet_max_bytes: float


@dataclass(frozen=True)
class Table2Result:
    """The regenerated Table 2 (one row per map profile)."""

    rows: List[Table2Row]
    paper_server_iat_ms: float
    paper_client_iat_ms: float
    paper_client_packet_range: tuple

    def row(self, game_map: str) -> Table2Row:
        for row in self.rows:
            if row.game_map == game_map:
                return row
        raise KeyError(game_map)


def run_table2(
    duration_s: float = 120.0, num_players: int = 8, seed: Optional[int] = 22
) -> Table2Result:
    """Regenerate Table 2 from synthetic Half-Life sessions (one per map)."""
    rows: List[Table2Row] = []
    for index, game_map in enumerate(sorted(half_life.MAP_PROFILES)):
        model = half_life.build_model(game_map)
        trace = model.session_trace(duration_s, num_players, seed=None if seed is None else seed + index)
        bursts = burst_analysis.reconstruct_bursts(trace)

        server_iats_ms = [1e3 * v for v in burst_analysis.burst_inter_arrival_times(bursts)]
        server_iat_fit = fit_deterministic(server_iats_ms)
        server_sizes = trace.downstream().sizes()
        server_size_fit = fit_lognormal_least_squares(server_sizes)

        client_sizes = trace.upstream().sizes()
        client_iats_ms = [
            1e3 * v
            for client_id in trace.upstream().client_ids()
            for v in trace.upstream().for_client(client_id).inter_arrival_times()
        ]
        client_iat_fit = fit_deterministic(client_iats_ms)

        rows.append(
            Table2Row(
                game_map=game_map,
                server_iat_mean_ms=sample_moments(server_iats_ms)[0],
                server_iat_fit=f"Det({server_iat_fit.distribution.mean:.0f})",
                server_packet_mean_bytes=sample_moments(server_sizes)[0],
                server_packet_fit=server_size_fit.name,
                client_iat_mean_ms=sample_moments(client_iats_ms)[0],
                client_iat_fit=f"Det({client_iat_fit.distribution.mean:.0f})",
                client_packet_mean_bytes=sample_moments(client_sizes)[0],
                client_packet_min_bytes=min(client_sizes),
                client_packet_max_bytes=max(client_sizes),
            )
        )
    published = half_life.PUBLISHED
    return Table2Result(
        rows=rows,
        paper_server_iat_ms=published.server_iat_mean_ms,
        paper_client_iat_ms=published.client_iat_mean_ms,
        paper_client_packet_range=published.client_packet_range_bytes,
    )


def format_table2(result: Table2Result) -> str:
    """Text rendering of the regenerated Table 2."""
    headers = [
        "map",
        "s2c IAT (ms)",
        "s2c IAT fit",
        "s2c size (B)",
        "s2c size fit",
        "c2s IAT (ms)",
        "c2s IAT fit",
        "c2s size (B)",
    ]
    rows = [
        [
            r.game_map,
            r.server_iat_mean_ms,
            r.server_iat_fit,
            r.server_packet_mean_bytes,
            r.server_packet_fit,
            r.client_iat_mean_ms,
            r.client_iat_fit,
            r.client_packet_mean_bytes,
        ]
        for r in result.rows
    ]
    return format_table(headers, rows)
