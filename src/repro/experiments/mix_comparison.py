"""Experiment — multiplexed mix vs. dedicated per-game slices, on one Fleet.

Section 3.2 of the paper motivates carrying *several* game servers over
one reserved bit pipe (the N*D/G/1 -> M/G/1 model implemented by
:class:`~repro.core.downstream.MultiServerBurstQueue`).  The natural
operator question is whether that multiplexing helps or hurts the
served ping time compared to the alternative provisioning: cutting the
same pipe into **dedicated slices**, one per game, sized proportionally
to each game's downstream bandwidth demand (so every slice carries
exactly the same load as the shared pipe).

This driver answers it for a registry mix preset (default
``multi-game-dsl``): for every component game and every load of the
grid it serves

* the **mix** RTT quantile — the component's :meth:`tagged_variant`
  of the mix at the total gamer population, and
* the **dedicated** RTT quantile — the component's own single-server
  scenario on its bandwidth-proportional slice with its share of the
  gamers,

all as one request batch on a single :class:`~repro.fleet.Fleet`, so
the mix models (factor signature ``(1, 1, K-1)``) and the single-server
models (``(1, K, K-1)``) each collapse into their own stacked lockstep
groups.  The summary reads off, per game, the largest load whose
99.999% RTT stays within the 50 ms budget under either provisioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.rtt import DEFAULT_QUANTILE
from ..errors import ParameterError
from ..fleet import Fleet, Request
from ..scenarios import SCENARIO_PRESETS, MixScenario, SweepPoint, SweepSeries, get_scenario

from .report import format_table

__all__ = [
    "MixComponentComparison",
    "MixComparisonResult",
    "run_mix_comparison",
    "format_mix_comparison",
]

#: The paper's "excellent game play" ping budget (Section 4), in ms.
EXCELLENT_RTT_MS = 50.0

#: Default load grid: high enough that every component slice carries at
#: least one gamer, dense enough to interpolate the 50 ms crossing.
DEFAULT_MIX_LOADS = tuple(0.15 + 0.07 * i for i in range(11))


@dataclass(frozen=True)
class MixComponentComparison:
    """One game's curves under the two provisioning schemes."""

    label: str
    weight: float
    dedicated_rate_bps: float
    mix_series: SweepSeries
    dedicated_series: SweepSeries

    def gain_ms(self, load: float) -> float:
        """Dedicated-minus-mix RTT (ms) at ``load`` (positive = mix wins)."""
        return self.dedicated_series.interpolate_rtt_ms(
            load
        ) - self.mix_series.interpolate_rtt_ms(load)


@dataclass(frozen=True)
class MixComparisonResult:
    """The regenerated mix-vs-slices comparison."""

    mix: MixScenario
    components: Tuple[MixComponentComparison, ...]
    probability: float
    rtt_bound_ms: float
    loads: Tuple[float, ...]
    fleet_stats: Dict[str, int]


def _component_label(index: int, scenario) -> str:
    """A preset name when the component is one, else a parameter label."""
    for name, preset in SCENARIO_PRESETS.items():
        if preset == scenario:
            return name
    return (
        f"component-{index} (T={scenario.tick_interval_s * 1e3:.0f}ms, "
        f"P_S={scenario.server_packet_bytes:.0f}B)"
    )


def run_mix_comparison(
    mix: Union[str, MixScenario] = "multi-game-dsl",
    loads: Optional[Sequence[float]] = None,
    probability: float = DEFAULT_QUANTILE,
    rtt_bound_ms: float = EXCELLENT_RTT_MS,
    fleet: Optional[Fleet] = None,
) -> MixComparisonResult:
    """Serve the mix and its dedicated-slice alternative on one Fleet.

    The dedicated slice of component ``i`` gets the capacity share
    ``w_i * P_S_i / T_i`` of the pipe (its fraction of the aggregate
    downstream bandwidth demand), which makes the slice's downlink load
    equal the shared pipe's at every operating point — the comparison
    isolates the multiplexing effect, not a load difference.  Both
    provisionings serve the *same* gamer population
    (``w_i * gamers_at_load(load)`` per game).
    """
    if isinstance(mix, str):
        mix = get_scenario(mix)
    if not isinstance(mix, MixScenario):
        raise ParameterError(
            f"run_mix_comparison needs a MixScenario (or the name of one); "
            f"got {type(mix).__name__}"
        )
    loads = tuple(float(load) for load in (DEFAULT_MIX_LOADS if loads is None else loads))
    fleet = fleet if fleet is not None else Fleet()

    demand = [
        c.weight * c.scenario.server_packet_bytes / c.scenario.tick_interval_s
        for c in mix.components
    ]
    total_demand = sum(demand)
    dedicated = [
        c.scenario.derive(
            aggregation_rate_bps=mix.aggregation_rate_bps * share / total_demand
        )
        for c, share in zip(mix.components, demand)
    ]

    variants = [mix.tagged_variant(index) for index in range(len(mix.components))]

    # Tags key by the load's *position* in the grid, so arbitrarily
    # close (or equal) loads never collide in the answer lookup.
    requests: List[Request] = []
    for position, load in enumerate(loads):
        total_gamers = mix.gamers_at_load(load)
        for index, component in enumerate(mix.components):
            gamers = component.weight * total_gamers
            requests.append(
                Request(
                    variants[index],
                    num_gamers=total_gamers,
                    probability=probability,
                    tag=f"mix:{index}:{position}",
                )
            )
            requests.append(
                Request(
                    dedicated[index],
                    num_gamers=gamers,
                    probability=probability,
                    tag=f"dedicated:{index}:{position}",
                )
            )
    answers = fleet.serve(requests)

    by_tag = {answer.tag: answer for answer in answers}
    comparisons = []
    for index, component in enumerate(mix.components):
        label = _component_label(index, component.scenario)
        mix_series = SweepSeries(
            label=f"{label} (mix)",
            scenario=variants[index],
            probability=probability,
        )
        dedicated_series = SweepSeries(
            label=f"{label} (dedicated)",
            scenario=dedicated[index],
            probability=probability,
        )
        for position, load in enumerate(loads):
            for series, tag in (
                (mix_series, f"mix:{index}:{position}"),
                (dedicated_series, f"dedicated:{index}:{position}"),
            ):
                answer = by_tag[tag]
                series.points.append(
                    SweepPoint(
                        downlink_load=load,
                        uplink_load=answer.uplink_load,
                        num_gamers=answer.num_gamers,
                        rtt_quantile_s=answer.rtt_quantile_s,
                    )
                )
        comparisons.append(
            MixComponentComparison(
                label=label,
                weight=component.weight,
                dedicated_rate_bps=dedicated[index].aggregation_rate_bps,
                mix_series=mix_series,
                dedicated_series=dedicated_series,
            )
        )

    return MixComparisonResult(
        mix=mix,
        components=tuple(comparisons),
        probability=probability,
        rtt_bound_ms=rtt_bound_ms,
        loads=loads,
        fleet_stats=fleet.stats.as_dict(),
    )


def format_mix_comparison(result: MixComparisonResult) -> str:
    """Tabulate the per-game multiplexing summary.

    The spot-check column reports the RTT at 40% load when the swept
    grid covers it, otherwise at the grid's median load — the header
    always names the load actually used (``np.interp`` would silently
    clamp an out-of-grid reference to the endpoint).
    """
    loads = result.loads
    reference = 0.40 if loads[0] <= 0.40 <= loads[-1] else loads[len(loads) // 2]
    headers = [
        "component",
        "weight",
        "slice (Mbit/s)",
        f"mix RTT @ {reference:.0%} (ms)",
        f"dedicated RTT @ {reference:.0%} (ms)",
        f"mix max load @ {result.rtt_bound_ms:.0f}ms",
        f"dedicated max load @ {result.rtt_bound_ms:.0f}ms",
    ]
    rows: List[List[object]] = []
    for comparison in result.components:
        rows.append(
            [
                comparison.label,
                comparison.weight,
                comparison.dedicated_rate_bps / 1e6,
                comparison.mix_series.interpolate_rtt_ms(reference),
                comparison.dedicated_series.interpolate_rtt_ms(reference),
                comparison.mix_series.max_load_for_rtt_ms(result.rtt_bound_ms),
                comparison.dedicated_series.max_load_for_rtt_ms(result.rtt_bound_ms),
            ]
        )
    title = (
        f"Mix vs dedicated slices on a {result.mix.aggregation_rate_bps / 1e6:.0f} "
        f"Mbit/s pipe ({100 * result.probability:.3f}% RTT quantile, one Fleet: "
        f"{result.fleet_stats['evaluations']} evaluations, "
        f"{result.fleet_stats['stacked_mgf_calls']} stacked MGF array calls)"
    )
    return f"{title}\n{format_table(headers, rows)}"
