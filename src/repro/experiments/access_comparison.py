"""Experiment — RTT vs. load across access technologies, on one Fleet.

The paper dimensions a DSL aggregation network; the registry carries the
same gaming traffic over cable, FTTH, LTE and LEO-satellite access
profiles.  This driver sweeps the RTT quantile over the downlink-load
grid for several presets *at once*: all (preset, load) lookups are
authored as one request batch and served by a single
:class:`~repro.fleet.Fleet`, whose stacked cross-model inverter answers
the whole heterogeneous sweep in a few joint array evaluations — the
multi-preset counterpart of the Figure 3/4 sweeps.

The summary read off each curve is the paper's Section 4 question per
technology: the largest load (and gamer count) whose 99.999% RTT stays
within the 50 ms "excellent game play" budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.rtt import DEFAULT_QUANTILE
from ..fleet import Fleet, Request
from ..scenarios import SweepPoint, SweepSeries, default_load_grid, get_scenario
from .report import format_table

__all__ = [
    "ACCESS_PRESETS",
    "AccessComparisonResult",
    "run_access_comparison",
    "format_access_comparison",
]

#: The access-technology presets compared by default.
ACCESS_PRESETS: Tuple[str, ...] = ("paper-dsl", "cable", "ftth", "lte", "satellite-leo")

#: The paper's "excellent game play" ping budget (Section 4), in ms.
EXCELLENT_RTT_MS = 50.0


@dataclass(frozen=True)
class AccessComparisonResult:
    """The regenerated multi-preset comparison."""

    series_by_preset: Dict[str, SweepSeries]
    probability: float
    rtt_bound_ms: float
    max_load_by_preset: Dict[str, float]
    max_gamers_by_preset: Dict[str, int]
    fleet_stats: Dict[str, int]

    def series(self, preset: str) -> SweepSeries:
        return self.series_by_preset[preset]


def run_access_comparison(
    presets: Sequence[str] = ACCESS_PRESETS,
    loads: Optional[Sequence[float]] = None,
    probability: float = DEFAULT_QUANTILE,
    rtt_bound_ms: float = EXCELLENT_RTT_MS,
    fleet: Optional[Fleet] = None,
) -> AccessComparisonResult:
    """Sweep every preset over the load grid through one Fleet batch.

    Passing an existing ``fleet`` reuses (and fills) its shared cache,
    so repeated comparisons — or comparisons after other request
    traffic — only evaluate the operating points not yet served.
    """
    if loads is None:
        loads = default_load_grid()
    loads = [float(load) for load in loads]
    fleet = fleet if fleet is not None else Fleet()

    requests = [
        Request(preset, downlink_load=load, probability=probability, tag=preset)
        for preset in presets
        for load in loads
    ]
    answers = fleet.serve(requests)

    series_by_preset: Dict[str, SweepSeries] = {}
    position = 0
    for preset in presets:
        scenario = get_scenario(preset)
        series = SweepSeries(
            label=preset, scenario=scenario, probability=probability
        )
        for load in loads:
            answer = answers[position]
            position += 1
            series.points.append(
                SweepPoint(
                    downlink_load=load,
                    uplink_load=answer.uplink_load,
                    num_gamers=answer.num_gamers,
                    rtt_quantile_s=answer.rtt_quantile_s,
                )
            )
        series_by_preset[preset] = series

    max_load_by_preset: Dict[str, float] = {}
    max_gamers_by_preset: Dict[str, int] = {}
    for preset, series in series_by_preset.items():
        max_load = series.max_load_for_rtt_ms(rtt_bound_ms)
        max_load_by_preset[preset] = max_load
        scenario = series.scenario
        max_gamers_by_preset[preset] = (
            int(scenario.gamers_at_load(max_load)) if max_load > 0.0 else 0
        )

    return AccessComparisonResult(
        series_by_preset=series_by_preset,
        probability=probability,
        rtt_bound_ms=rtt_bound_ms,
        max_load_by_preset=max_load_by_preset,
        max_gamers_by_preset=max_gamers_by_preset,
        fleet_stats=fleet.stats.as_dict(),
    )


def format_access_comparison(result: AccessComparisonResult) -> str:
    """Tabulate the per-technology dimensioning summary."""
    headers = [
        "preset",
        "aggregation (Mbit/s)",
        "propagation (ms)",
        f"max load @ {result.rtt_bound_ms:.0f}ms",
        "max gamers",
        "RTT @ 40% load (ms)",
    ]
    rows: List[List[object]] = []
    for preset, series in result.series_by_preset.items():
        scenario = series.scenario
        rows.append(
            [
                preset,
                scenario.aggregation_rate_bps / 1e6,
                1e3 * scenario.propagation_delay_s,
                result.max_load_by_preset[preset],
                result.max_gamers_by_preset[preset],
                series.interpolate_rtt_ms(0.40),
            ]
        )
    title = (
        f"Access comparison ({100 * result.probability:.3f}% RTT quantile, "
        f"served by one Fleet: {result.fleet_stats['evaluations']} evaluations, "
        f"{result.fleet_stats['stacked_mgf_calls']} stacked MGF array calls)"
    )
    return f"{title}\n{format_table(headers, rows)}"
