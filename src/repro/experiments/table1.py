"""Experiment Table 1 — Counter-Strike traffic characteristics (Färber).

The paper's Table 1 lists, per direction, the measured mean and CoV of
the packet sizes and (burst) inter-arrival times together with the
distribution Färber fitted to them.  The reproduction generates a
synthetic Counter-Strike session from the published model, re-measures
those statistics on the generated trace and re-runs the least-squares
extreme-value fit, so every column of the table is recomputed by the
library rather than copied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..distributions import fit_deterministic, fit_extreme_least_squares, sample_moments
from ..traffic import bursts as burst_analysis
from ..traffic import summarize_trace
from ..traffic.games import counter_strike
from .report import format_table

__all__ = ["Table1Row", "Table1Result", "run_table1", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 (one quantity in one direction)."""

    quantity: str
    direction: str
    measured_mean: float
    measured_cov: float
    fitted: str
    paper_mean: float
    paper_cov: float
    paper_fit: str


@dataclass(frozen=True)
class Table1Result:
    """The regenerated Table 1."""

    rows: List[Table1Row]
    num_packets: int
    duration_s: float

    def row(self, quantity: str, direction: str) -> Table1Row:
        """Look up one row by quantity and direction."""
        for row in self.rows:
            if row.quantity == quantity and row.direction == direction:
                return row
        raise KeyError((quantity, direction))


def run_table1(
    duration_s: float = 180.0, num_players: int = 8, seed: Optional[int] = 11
) -> Table1Result:
    """Regenerate Table 1 from a synthetic Counter-Strike session."""
    published = counter_strike.PUBLISHED
    model = counter_strike.build_model()
    trace = model.session_trace(duration_s, num_players, seed=seed)
    summary = summarize_trace(trace)
    bursts = burst_analysis.reconstruct_bursts(trace)

    # Server-to-client packet sizes: mean/CoV plus the extreme-value fit.
    server_sizes = trace.downstream().sizes()
    server_size_fit = fit_extreme_least_squares(server_sizes)

    # Server-to-client burst inter-arrival times (per-burst, in ms).
    server_iats_ms = [1e3 * v for v in burst_analysis.burst_inter_arrival_times(bursts)]
    server_iat_fit = fit_extreme_least_squares(server_iats_ms)

    # Client-to-server packet sizes and inter-arrival times.
    client_sizes = trace.upstream().sizes()
    client_size_fit = fit_extreme_least_squares(client_sizes)
    client_iats_ms = [
        1e3 * v
        for client_id in trace.upstream().client_ids()
        for v in trace.upstream().for_client(client_id).inter_arrival_times()
    ]
    client_iat_fit = fit_deterministic(client_iats_ms)

    def moments(samples) -> tuple:
        return sample_moments(samples)

    rows = [
        Table1Row(
            quantity="packet_size_bytes",
            direction="server_to_client",
            measured_mean=moments(server_sizes)[0],
            measured_cov=moments(server_sizes)[1],
            fitted=server_size_fit.name,
            paper_mean=published.server_packet_mean_bytes,
            paper_cov=published.server_packet_cov,
            paper_fit=published.server_packet_fit,
        ),
        Table1Row(
            quantity="burst_iat_ms",
            direction="server_to_client",
            measured_mean=moments(server_iats_ms)[0],
            measured_cov=moments(server_iats_ms)[1],
            fitted=server_iat_fit.name,
            paper_mean=published.server_iat_mean_ms,
            paper_cov=published.server_iat_cov,
            paper_fit=published.server_iat_fit,
        ),
        Table1Row(
            quantity="packet_size_bytes",
            direction="client_to_server",
            measured_mean=moments(client_sizes)[0],
            measured_cov=moments(client_sizes)[1],
            fitted=client_size_fit.name,
            paper_mean=published.client_packet_mean_bytes,
            paper_cov=published.client_packet_cov,
            paper_fit=published.client_packet_fit,
        ),
        Table1Row(
            quantity="iat_ms",
            direction="client_to_server",
            measured_mean=moments(client_iats_ms)[0],
            measured_cov=moments(client_iats_ms)[1],
            fitted=f"Det({client_iat_fit.distribution.mean:.0f})",
            paper_mean=published.client_iat_mean_ms,
            paper_cov=published.client_iat_cov,
            paper_fit=published.client_iat_fit,
        ),
    ]
    return Table1Result(rows=rows, num_packets=len(trace), duration_s=duration_s)


def format_table1(result: Table1Result) -> str:
    """Text rendering of the regenerated Table 1."""
    headers = [
        "quantity",
        "direction",
        "mean",
        "cov",
        "fit",
        "paper mean",
        "paper cov",
        "paper fit",
    ]
    rows = [
        [
            r.quantity,
            r.direction,
            r.measured_mean,
            r.measured_cov,
            r.fitted,
            r.paper_mean,
            r.paper_cov,
            r.paper_fit,
        ]
        for r in result.rows
    ]
    return format_table(headers, rows)
