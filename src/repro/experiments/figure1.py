"""Experiment Figure 1 — tail distribution function of the burst sizes.

Figure 1 plots the experimental TDF of the measured burst sizes against
Erlang tails of order 15, 20 and 25 whose mean is pinned to the measured
mean (1852 byte).  The accompanying text derives K = 28 from the CoV fit
and K between 15 and 20 from the (visual) tail fit.  The reproduction
computes the same curves and both order estimates from the synthetic
Unreal Tournament trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..distributions import Empirical, Erlang, fit_erlang_cov, fit_erlang_tail
from ..traffic import bursts as burst_analysis
from ..traffic.games import unreal_tournament
from .report import format_series

__all__ = ["Figure1Result", "run_figure1", "format_figure1"]

#: The Erlang orders drawn in the published figure.
PAPER_FIGURE_ORDERS = (15, 20, 25)


@dataclass
class Figure1Result:
    """The regenerated Figure 1 data."""

    burst_size_grid: np.ndarray
    empirical_tdf: np.ndarray
    erlang_tdfs: Dict[int, np.ndarray]
    mean_burst_bytes: float
    cov_burst: float
    order_from_cov: int
    order_from_tail: int
    num_bursts: int
    paper_order_from_cov: int = unreal_tournament.PUBLISHED.erlang_order_from_cov
    paper_order_from_tail: tuple = unreal_tournament.PUBLISHED.erlang_order_from_tail

    def tail_mismatch(self, order: int) -> float:
        """Mean |log10| difference between empirical and Erlang TDF.

        Evaluated where the empirical tail is between 1e-3 and 0.5, the
        region the visual fit of Figure 1 is based on.
        """
        mask = (self.empirical_tdf > 1e-3) & (self.empirical_tdf < 0.5)
        if not np.any(mask):
            return float("nan")
        erlang = np.clip(self.erlang_tdfs[order][mask], 1e-300, 1.0)
        empirical = np.clip(self.empirical_tdf[mask], 1e-300, 1.0)
        return float(np.mean(np.abs(np.log10(erlang) - np.log10(empirical))))


def run_figure1(
    duration_s: float = unreal_tournament.PUBLISHED.trace_duration_s,
    num_players: int = unreal_tournament.PUBLISHED.num_players,
    seed: Optional[int] = 2006,
    orders: Sequence[int] = PAPER_FIGURE_ORDERS,
    grid_points: int = 200,
) -> Figure1Result:
    """Regenerate the Figure 1 curves from the synthetic UT2003 trace."""
    trace = unreal_tournament.lan_party_trace(duration_s, num_players, seed=seed)
    bursts = burst_analysis.reconstruct_bursts(trace)
    sizes = burst_analysis.burst_sizes(bursts)
    empirical = Empirical(sizes)

    grid = np.linspace(0.0, max(sizes) * 1.1, grid_points)
    empirical_tdf = np.asarray(empirical.tail(grid), dtype=float)
    erlang_tdfs: Dict[int, np.ndarray] = {}
    for order in orders:
        candidate = Erlang.from_mean_order(empirical.mean, int(order))
        erlang_tdfs[int(order)] = np.asarray(candidate.tail(grid), dtype=float)

    cov_fit = fit_erlang_cov(sizes)
    tail_fit = fit_erlang_tail(sizes)
    return Figure1Result(
        burst_size_grid=grid,
        empirical_tdf=empirical_tdf,
        erlang_tdfs=erlang_tdfs,
        mean_burst_bytes=empirical.mean,
        cov_burst=empirical.cov,
        order_from_cov=cov_fit.distribution.order,
        order_from_tail=tail_fit.distribution.order,
        num_bursts=len(sizes),
    )


def format_figure1(result: Figure1Result, num_rows: int = 20) -> str:
    """Text rendering of the Figure 1 series (sub-sampled)."""
    indices = np.linspace(0, result.burst_size_grid.size - 1, num_rows).astype(int)
    series = {"empirical": result.empirical_tdf[indices]}
    for order, tdf in sorted(result.erlang_tdfs.items()):
        series[f"Erlang(K={order})"] = tdf[indices]
    table = format_series("burst size (bytes)", result.burst_size_grid[indices], series)
    summary = (
        f"\nmean burst size : {result.mean_burst_bytes:.0f} bytes "
        f"(paper: {unreal_tournament.PUBLISHED.burst_size_mean_bytes:.0f})"
        f"\nburst size CoV  : {result.cov_burst:.3f} "
        f"(paper: {unreal_tournament.PUBLISHED.burst_size_cov:.2f})"
        f"\nK from CoV fit  : {result.order_from_cov} (paper: {result.paper_order_from_cov})"
        f"\nK from tail fit : {result.order_from_tail} "
        f"(paper: between {result.paper_order_from_tail[0]} and {result.paper_order_from_tail[1]})"
    )
    return table + summary
