"""Experiment drivers regenerating every table and figure of the paper."""

from .table1 import Table1Result, format_table1, run_table1
from .table2 import Table2Result, format_table2, run_table2
from .table3 import Table3Result, format_table3, run_table3
from .figure1 import Figure1Result, format_figure1, run_figure1
from .figure3 import Figure3Result, format_figure3, run_figure3
from .figure4 import Figure4Result, format_figure4, run_figure4
from .dimensioning import (
    DimensioningTable,
    PAPER_DIMENSIONING,
    format_dimensioning,
    run_dimensioning,
)
from .access_comparison import (
    ACCESS_PRESETS,
    AccessComparisonResult,
    format_access_comparison,
    run_access_comparison,
)
from .mix_comparison import (
    MixComparisonResult,
    MixComponentComparison,
    format_mix_comparison,
    run_mix_comparison,
)
from .report import format_kv, format_series, format_table

__all__ = [
    "Table1Result",
    "format_table1",
    "run_table1",
    "Table2Result",
    "format_table2",
    "run_table2",
    "Table3Result",
    "format_table3",
    "run_table3",
    "Figure1Result",
    "format_figure1",
    "run_figure1",
    "Figure3Result",
    "format_figure3",
    "run_figure3",
    "Figure4Result",
    "format_figure4",
    "run_figure4",
    "DimensioningTable",
    "PAPER_DIMENSIONING",
    "format_dimensioning",
    "run_dimensioning",
    "ACCESS_PRESETS",
    "AccessComparisonResult",
    "format_access_comparison",
    "run_access_comparison",
    "MixComparisonResult",
    "MixComponentComparison",
    "format_mix_comparison",
    "run_mix_comparison",
    "format_kv",
    "format_series",
    "format_table",
]
