"""Small text-report helpers shared by the experiment drivers and the CLI."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["format_table", "format_kv", "format_series"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a simple monospace table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_kv(pairs: Dict[str, object], title: str = "") -> str:
    """Render a key/value block."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    width = max((len(key) for key in pairs), default=0)
    for key, value in pairs.items():
        lines.append(f"{key.ljust(width)} : {_format_cell(value)}")
    return "\n".join(lines)


def format_series(x_label: str, x_values: Sequence[float],
                  series: Dict[str, Sequence[float]]) -> str:
    """Render several curves sharing an x axis as a table."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [values[i] for values in series.values()])
    return format_table(headers, rows)
