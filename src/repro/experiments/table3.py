"""Experiment Table 3 — the Unreal Tournament 2003 LAN-party trace.

Table 3 summarises the six-minute, 12-player trace analysed in
Section 2.2: packet sizes, (burst) inter-arrival times and burst sizes
per direction, plus the anomalies discussed in the text (delayed bursts,
bursts with a missing packet, the within-burst size CoV range).  The
reproduction synthesises the trace (see
:mod:`repro.traffic.games.unreal_tournament`) and feeds it through the
same trace-analysis pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..traffic import summarize_trace
from ..traffic.games import unreal_tournament
from .report import format_table

__all__ = ["Table3Result", "run_table3", "format_table3"]


@dataclass(frozen=True)
class Table3Result:
    """The regenerated Table 3 plus the Section 2.2 anomaly statistics."""

    server_packet_mean_bytes: float
    server_packet_cov: float
    client_packet_mean_bytes: float
    client_packet_cov: float
    burst_iat_mean_ms: float
    burst_iat_cov: float
    client_iat_mean_ms: float
    client_iat_cov: float
    burst_size_mean_bytes: float
    burst_size_cov: float
    within_burst_cov_min: float
    within_burst_cov_max: float
    delayed_burst_fraction: float
    incomplete_burst_fraction: float
    num_bursts: int
    num_packets: int
    paper: unreal_tournament.UnrealTournamentPublished = unreal_tournament.PUBLISHED


def run_table3(
    duration_s: float = unreal_tournament.PUBLISHED.trace_duration_s,
    num_players: int = unreal_tournament.PUBLISHED.num_players,
    seed: Optional[int] = 2006,
) -> Table3Result:
    """Regenerate Table 3 from the synthetic LAN-party trace."""
    trace = unreal_tournament.lan_party_trace(duration_s, num_players, seed=seed)
    summary = summarize_trace(trace, expected_packets=num_players)
    cov_range = summary.within_burst_size_cov_range or (0.0, 0.0)
    return Table3Result(
        server_packet_mean_bytes=summary.server_to_client.packet_size_bytes.mean,
        server_packet_cov=summary.server_to_client.packet_size_bytes.cov,
        client_packet_mean_bytes=summary.client_to_server.packet_size_bytes.mean,
        client_packet_cov=summary.client_to_server.packet_size_bytes.cov,
        burst_iat_mean_ms=1e3 * summary.server_to_client.inter_arrival_time_s.mean,
        burst_iat_cov=summary.server_to_client.inter_arrival_time_s.cov,
        client_iat_mean_ms=1e3 * summary.client_to_server.inter_arrival_time_s.mean,
        client_iat_cov=summary.client_to_server.inter_arrival_time_s.cov,
        burst_size_mean_bytes=summary.server_to_client.burst_size_bytes.mean,
        burst_size_cov=summary.server_to_client.burst_size_bytes.cov,
        within_burst_cov_min=cov_range[0],
        within_burst_cov_max=cov_range[1],
        delayed_burst_fraction=summary.delayed_burst_fraction,
        incomplete_burst_fraction=summary.incomplete_burst_fraction,
        num_bursts=int(summary.extra["num_bursts"]),
        num_packets=int(summary.extra["num_packets"]),
    )


def format_table3(result: Table3Result) -> str:
    """Text rendering of the regenerated Table 3."""
    paper = result.paper
    headers = ["quantity", "measured mean", "measured cov", "paper mean", "paper cov"]
    rows = [
        [
            "s2c packet size (bytes)",
            result.server_packet_mean_bytes,
            result.server_packet_cov,
            paper.server_packet_mean_bytes,
            paper.server_packet_cov,
        ],
        [
            "c2s packet size (bytes)",
            result.client_packet_mean_bytes,
            result.client_packet_cov,
            paper.client_packet_mean_bytes,
            paper.client_packet_cov,
        ],
        [
            "s2c burst IAT (ms)",
            result.burst_iat_mean_ms,
            result.burst_iat_cov,
            paper.burst_iat_mean_ms,
            paper.burst_iat_cov,
        ],
        [
            "c2s IAT (ms)",
            result.client_iat_mean_ms,
            result.client_iat_cov,
            paper.client_iat_mean_ms,
            paper.client_iat_cov,
        ],
        [
            "burst size (bytes)",
            result.burst_size_mean_bytes,
            result.burst_size_cov,
            paper.burst_size_mean_bytes,
            paper.burst_size_cov,
        ],
    ]
    table = format_table(headers, rows)
    extras = (
        f"\nwithin-burst size CoV range : {result.within_burst_cov_min:.3f} - "
        f"{result.within_burst_cov_max:.3f} (paper: {paper.within_burst_cov_range[0]:.2f} - "
        f"{paper.within_burst_cov_range[1]:.2f})"
        f"\ndelayed bursts             : {100 * result.delayed_burst_fraction:.2f}% "
        f"(paper: ~{100 * paper.delayed_burst_fraction:.1f}%)"
        f"\nbursts with missing packet : {100 * result.incomplete_burst_fraction:.2f}% "
        f"(paper: ~{100 * paper.incomplete_burst_fraction:.1f}%)"
        f"\nbursts / packets analysed  : {result.num_bursts} / {result.num_packets}"
    )
    return table + extras
