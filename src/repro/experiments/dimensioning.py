"""Experiment — the Section 4 dimensioning rule.

For ``P_S = 125`` byte, ``T = 40`` ms and ``C = 5`` Mbit/s the paper
derives, from the requirement that the 99.999% RTT stays below 50 ms
(excellent game play), a maximum downlink load of roughly 20% / 40% /
60% and a maximum number of gamers of 40 / 80 / 120 for ``K`` = 2 / 9 /
20.  This module recomputes those numbers with the library's
dimensioning code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.dimensioning import DimensioningResult
from ..core.rtt import DEFAULT_QUANTILE
from ..engine import Engine
from ..scenarios import Scenario
from .report import format_table

__all__ = [
    "PAPER_DIMENSIONING",
    "DimensioningRow",
    "DimensioningTable",
    "run_dimensioning",
    "format_dimensioning",
]

#: The paper's reported numbers: Erlang order -> (max load, max gamers).
PAPER_DIMENSIONING: Dict[int, tuple] = {2: (0.20, 40), 9: (0.40, 80), 20: (0.60, 120)}


@dataclass(frozen=True)
class DimensioningRow:
    """Dimensioning outcome for one Erlang order."""

    erlang_order: int
    max_load: float
    max_gamers: int
    rtt_at_max_load_ms: float
    paper_max_load: Optional[float]
    paper_max_gamers: Optional[int]


@dataclass(frozen=True)
class DimensioningTable:
    """The regenerated dimensioning table."""

    rows: List[DimensioningRow]
    rtt_bound_ms: float
    probability: float
    scenario: Scenario

    def row(self, erlang_order: int) -> DimensioningRow:
        for row in self.rows:
            if row.erlang_order == erlang_order:
                return row
        raise KeyError(erlang_order)


def run_dimensioning(
    orders: Sequence[int] = (2, 9, 20),
    rtt_bound_s: float = 0.050,
    server_packet_bytes: float = 125.0,
    tick_interval_s: float = 0.040,
    probability: float = DEFAULT_QUANTILE,
    method: str = "inversion",
) -> DimensioningTable:
    """Recompute the maximum tolerable load and N_max per Erlang order."""
    base = Scenario(
        server_packet_bytes=server_packet_bytes, tick_interval_s=tick_interval_s
    )
    rows: List[DimensioningRow] = []
    for order in orders:
        engine = Engine(
            base.with_erlang_order(int(order)), probability=probability, method=method
        )
        result: DimensioningResult = engine.dimension(rtt_bound_s)
        paper = PAPER_DIMENSIONING.get(int(order), (None, None))
        rows.append(
            DimensioningRow(
                erlang_order=int(order),
                max_load=result.max_load,
                max_gamers=result.max_gamers,
                rtt_at_max_load_ms=result.rtt_at_max_load_ms,
                paper_max_load=paper[0],
                paper_max_gamers=paper[1],
            )
        )
    return DimensioningTable(
        rows=rows,
        rtt_bound_ms=1e3 * rtt_bound_s,
        probability=probability,
        scenario=base,
    )


def format_dimensioning(table: DimensioningTable) -> str:
    """Text rendering of the dimensioning table."""
    headers = [
        "K",
        "max load",
        "max gamers",
        "RTT at max load (ms)",
        "paper max load",
        "paper max gamers",
    ]
    rows = [
        [
            r.erlang_order,
            r.max_load,
            r.max_gamers,
            r.rtt_at_max_load_ms,
            "-" if r.paper_max_load is None else r.paper_max_load,
            "-" if r.paper_max_gamers is None else r.paper_max_gamers,
        ]
        for r in table.rows
    ]
    header = (
        f"Dimensioning - P_S = {table.scenario.server_packet_bytes:.0f} byte, "
        f"T = {table.scenario.tick_interval_s * 1e3:.0f} ms, "
        f"C = {table.scenario.aggregation_rate_bps / 1e6:.1f} Mbps, "
        f"RTT bound = {table.rtt_bound_ms:.0f} ms\n"
    )
    return header + format_table(headers, rows)
