"""Command-line interface.

``fps-ping`` (or ``python -m repro``) exposes the experiment drivers,
the RTT calculator and the request-stream serving layer from the shell::

    fps-ping rtt --load 0.4 --erlang-order 9 --tick-ms 40
    fps-ping rtt --scenario counter-strike --load 0.3 --json
    fps-ping dimension --rtt-bound-ms 50 --scenario lte
    fps-ping admit --rtt-budget-ms 60 --scenario paper-dsl --gamers 10
    fps-ping admit --rtt-budget-ms 60 --scenario paper-dsl --surfaces surfaces/
    fps-ping table1 | table2 | table3 | figure1 | figure3 | figure4
    fps-ping compare-access
    fps-ping simulate --clients 40 --duration 30
    fps-ping validate --preset all --methods all
    fps-ping scenarios list
    fps-ping fleet --requests lookups.jsonl --warm-cache fleet-cache.json
    fps-ping serve --port 8421 --workers 4 --coalesce-ms 2 --max-batch 64
    fps-ping serve --port 9101 --worker-mode          # plan-executing worker
    fps-ping serve --remote 127.0.0.1:9101,127.0.0.1:9102   # front-end
    fps-ping surface build --scenario paper-dsl --out surfaces/
    fps-ping surface info surfaces/
    fps-ping serve --surfaces surfaces/               # O(1) warm path

``--scenario`` accepts a preset name (see
:func:`repro.scenarios.available_scenarios`) or a path to a JSON file
written with :meth:`repro.scenarios.Scenario.save`; individual flags
given on the command line override the preset's values.  ``--json``
switches every subcommand to machine-readable output.

``fleet`` reads one JSON request per line (``{"scenario": "ftth",
"load": 0.4}``, see :meth:`repro.fleet.Request.from_dict` for the
accepted fields) and emits one JSON answer per line, **streaming**: the
input is parsed and served in bounded windows (``--window`` requests
each, at most ``--max-inflight`` windows in flight) with each answer
written as soon as its window — and every window before it — has been
served, so memory stays flat on an arbitrarily long stream;
``--warm-cache PATH`` restores the cache before serving and persists it
afterwards, so repeated runs start warm, and ``--workers N`` fans the
compiled evaluation plans out over ``N`` worker processes (the answers
are bit-identical to the single-process run).  ``scenarios list``
enumerates the registered presets with their key parameters, so request
files can be authored without reading the source.

``serve`` runs the long-running asyncio HTTP daemon
(:class:`repro.serve.ServingDaemon`): ``POST /v1/rtt`` answers one
request record, ``POST /v1/batch`` streams a JSONL body through the
same bounded windows, ``GET /healthz`` / ``GET /stats`` report
liveness and the fleet/coalescer counters.  Concurrent requests are
coalesced into stacked micro-batches (``--coalesce-ms`` window,
``--max-batch`` size) with identical in-flight misses evaluated once;
SIGTERM/SIGINT drains gracefully and persists ``--warm-cache``.

The distributed tier splits ``serve`` into two roles: ``--worker-mode``
daemons additionally expose ``POST /v1/plan`` and execute the framed
evaluation plans a front-end ships them, and ``--remote host:port,...``
makes a front-end (``serve``) or a one-shot stream run (``fleet``) fan
its plans out over those workers with per-host failover — answers stay
bit-identical to the in-process run.  Worker daemons accept pickled
plan frames, so bind them only inside the serving cluster's trust
boundary.

``validate`` runs the vectorized validation fleet
(:class:`repro.validate.ValidationFleet`): every requested preset x
quantile method x load point is checked against a batched Monte-Carlo
reference (numpy 2-D Lindley recursion, replication-count-invariant
``SeedSequence.spawn`` seeding) within the per-method tolerance bands of
:data:`repro.validate.METHOD_BANDS`.  The sweep covers the full registry
— including multi-server mixes — in CI smoke time; the exit code is 0
only if every case lands inside its band.

``admit`` answers the operator's admission-control question: given an
RTT budget (in ms) and a quantile level, what is the largest load — and
gamer count — this scenario can carry while still meeting the budget,
and should a proposed operating point (``--load`` or ``--gamers``) be
admitted?  With ``--surfaces`` the answer comes from an O(1) certified
surface inversion (zero evaluation plans executed in-region); without
them, or with ``--exact``, the bit-identical exact search runs.  An
unmeetable budget is a negative *answer* (``admitted: no``, max load
0), not an error.

``surface build`` fits certified Chebyshev quantile surfaces
(:mod:`repro.surface`) for one scenario and persists them as JSON;
``surface info`` describes persisted surfaces (region, grid, certified
bound).  ``fleet --surfaces PATH`` and ``serve --surfaces PATH`` attach
the persisted surfaces so in-region requests are answered in O(1) from
the fitted polynomial, within each surface's certified relative error
bound, without ever compiling an evaluation plan; requests carrying
``"exact": true`` (and any out-of-region request) fall through to the
exact stacked path with bit-identical floats.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import dataclasses
import json
import os
import sys
from typing import Any, List, Optional

import numpy as np

from . import experiments
from .core.rtt import QUANTILE_METHODS
from .engine import Engine
from .errors import ReproError
from .executors import ParallelExecutor, RemoteExecutor
from .fleet import Fleet, Request
from .netsim import GamingSimulation, MixGamingSimulation
from .scenarios import MixScenario, SCENARIO_PRESETS, Scenario, scenario_from_spec
from .serve import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_PORT,
    ServingDaemon,
    serve_jsonl,
)
from .surface import build_surfaces, load_surfaces, save_surfaces

__all__ = ["main", "build_parser"]


class _RecordingAction(argparse._StoreAction):
    """``store`` action that records which options were given explicitly.

    Scenario presets and explicit flags are layered (flag beats preset),
    which requires telling "the user typed ``--tick-ms 40``" apart from
    "40 is the parser default"; argparse alone cannot.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        super().__call__(parser, namespace, values, option_string)
        explicit = getattr(namespace, "_explicit", None)
        if explicit is None:
            explicit = set()
            setattr(namespace, "_explicit", explicit)
        explicit.add(self.dest)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="fps-ping",
        description="Ping-time prediction for First Person Shooter games "
        "(reproduction of Degrande et al., 2006).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rtt = sub.add_parser("rtt", help="evaluate the RTT quantile at one operating point")
    _add_scenario_arguments(rtt)
    rtt.add_argument("--load", type=float, default=0.4, help="downlink load (0-1)")
    rtt.add_argument("--quantile", type=float, default=0.99999, help="quantile level")
    rtt.add_argument(
        "--method",
        choices=["inversion", "dominant-pole", "chernoff", "sum-of-quantiles"],
        default="inversion",
        help="quantile evaluation method",
    )

    dim = sub.add_parser("dimension", help="maximum load / gamers for an RTT budget")
    _add_scenario_arguments(dim)
    dim.add_argument("--rtt-bound-ms", type=float, default=50.0, help="RTT budget in ms")
    dim.add_argument("--quantile", type=float, default=0.99999, help="quantile level")

    admit = sub.add_parser(
        "admit", help="admission control: max capacity for an RTT budget"
    )
    _add_scenario_arguments(admit)
    admit.add_argument(
        "--rtt-budget-ms", type=float, required=True, help="RTT budget in ms"
    )
    admit.add_argument("--quantile", type=float, default=0.99999, help="quantile level")
    admit.add_argument(
        "--method",
        choices=["inversion", "dominant-pole", "chernoff", "sum-of-quantiles"],
        default="inversion",
        help="quantile evaluation method",
    )
    admit.add_argument(
        "--load", type=float, default=None,
        help="proposed downlink load to admit (at most one of --load/--gamers)",
    )
    admit.add_argument(
        "--gamers", type=float, default=None,
        help="proposed gamer count to admit (at most one of --load/--gamers)",
    )
    admit.add_argument(
        "--surfaces", default=None,
        help="certified surface file/directory for the O(1) inversion",
    )
    admit.add_argument(
        "--exact", action="store_true",
        help="force the exact search even with surfaces attached",
    )

    for name, help_text in [
        ("table1", "regenerate Table 1 (Counter-Strike characteristics)"),
        ("table2", "regenerate Table 2 (Half-Life characteristics)"),
        ("table3", "regenerate Table 3 (Unreal Tournament trace)"),
        ("figure1", "regenerate Figure 1 (burst-size tail fits)"),
        ("figure3", "regenerate Figure 3 (RTT vs load per Erlang order)"),
        ("figure4", "regenerate Figure 4 (RTT vs load per tick interval)"),
        ("compare-access", "RTT vs load across access profiles, on one Fleet"),
        ("compare-mix", "multi-server mix vs dedicated slices, on one Fleet"),
    ]:
        table_parser = sub.add_parser(name, help=help_text)
        _add_json_argument(table_parser)

    scenarios = sub.add_parser(
        "scenarios", help="inspect the registered scenario presets"
    )
    scenarios.add_argument(
        "action",
        nargs="?",
        choices=["list"],
        default="list",
        help="what to do (default: list the presets)",
    )
    _add_json_argument(scenarios)

    fleet = sub.add_parser(
        "fleet",
        aliases=["batch"],
        help="serve a JSONL stream of RTT lookups across scenarios",
    )
    fleet.add_argument(
        "--requests",
        type=str,
        required=True,
        help="path to a JSONL request file ('-' reads standard input)",
    )
    fleet.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the JSONL answers here instead of standard output",
    )
    fleet.add_argument(
        "--warm-cache",
        type=str,
        default=None,
        help="cache file to restore before serving and persist afterwards",
    )
    fleet.add_argument(
        "--max-cache-entries",
        type=int,
        default=100_000,
        help="entry budget of the shared answer cache",
    )
    fleet.add_argument(
        "--quantile", type=float, default=0.99999, help="default quantile level"
    )
    fleet.add_argument(
        "--method",
        choices=list(QUANTILE_METHODS),
        default="inversion",
        help="default quantile evaluation method",
    )
    fleet.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the evaluation plans (1 = in-process; "
        "answers are bit-identical for any worker count)",
    )
    fleet.add_argument(
        "--remote",
        type=str,
        default=None,
        metavar="HOST:PORT,...",
        help="execute the evaluation plans on these worker daemons "
        "(fps-ping serve --worker-mode) instead of in-process; "
        "mutually exclusive with --workers > 1",
    )
    fleet.add_argument(
        "--surfaces",
        type=str,
        default=None,
        metavar="PATH",
        help="certified quantile surfaces (file or directory, see "
        "'fps-ping surface build') answering in-region requests in O(1)",
    )
    fleet.add_argument(
        "--stats",
        action="store_true",
        help="print the fleet cache/evaluation statistics to standard error",
    )
    fleet.add_argument(
        "--window",
        type=int,
        default=DEFAULT_MAX_BATCH,
        help="requests per serving window (the stream is parsed and "
        "answered incrementally, window by window)",
    )
    fleet.add_argument(
        "--max-inflight",
        type=int,
        default=DEFAULT_MAX_INFLIGHT,
        help="windows allowed in flight at once (bounds memory; the "
        "producer is back-pressured beyond it)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the long-running asyncio HTTP serving daemon",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help="TCP port (0 binds an ephemeral port, printed at startup)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes executing the evaluation plans "
        "(1 = in-process; answers are bit-identical for any count)",
    )
    serve.add_argument(
        "--remote",
        type=str,
        default=None,
        metavar="HOST:PORT,...",
        help="fan the evaluation plans out over these worker daemons "
        "(fps-ping serve --worker-mode) with per-host failover; "
        "mutually exclusive with --workers > 1 and --worker-mode",
    )
    serve.add_argument(
        "--worker-mode",
        action="store_true",
        help="expose POST /v1/plan and execute framed evaluation plans "
        "for a front-end's --remote executor (trusted networks only: "
        "plan frames carry pickles)",
    )
    serve.add_argument(
        "--coalesce-ms",
        type=float,
        default=2.0,
        help="request-coalescing window in milliseconds: concurrent "
        "requests arriving within it are served as one stacked batch",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=DEFAULT_MAX_BATCH,
        help="flush a coalescing window once it holds this many requests",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=DEFAULT_MAX_INFLIGHT,
        help="bound on concurrently-served windows per /v1/batch stream",
    )
    serve.add_argument(
        "--warm-cache",
        type=str,
        default=None,
        help="cache file loaded at startup (if present) and persisted "
        "atomically on shutdown",
    )
    serve.add_argument(
        "--max-cache-entries",
        type=int,
        default=100_000,
        help="entry budget of the shared answer cache",
    )
    serve.add_argument(
        "--quantile", type=float, default=0.99999, help="default quantile level"
    )
    serve.add_argument(
        "--method",
        choices=list(QUANTILE_METHODS),
        default="inversion",
        help="default quantile evaluation method",
    )
    serve.add_argument(
        "--surfaces",
        type=str,
        default=None,
        metavar="PATH",
        help="certified quantile surfaces (file or directory, see "
        "'fps-ping surface build') answering in-region requests in O(1); "
        "startup fails if the path cannot be loaded",
    )

    surface = sub.add_parser(
        "surface",
        help="build and inspect certified quantile surfaces",
    )
    surface_sub = surface.add_subparsers(dest="surface_command", required=True)
    surface_build = surface_sub.add_parser(
        "build",
        help="fit and certify quantile surfaces for one scenario",
    )
    surface_build.add_argument(
        "--scenario",
        type=str,
        required=True,
        help="scenario preset name or JSON file to certify",
    )
    surface_build.add_argument(
        "--out",
        type=str,
        required=True,
        help="output path: an existing directory (or a path ending in "
        f"'{os.sep}') gets one file per scenario, anything else is "
        "written as a single JSON document",
    )
    surface_build.add_argument(
        "--methods",
        type=str,
        default="inversion",
        help="comma-separated quantile methods to certify, or 'all' "
        f"for every method ({', '.join(QUANTILE_METHODS)})",
    )
    surface_build.add_argument(
        "--tolerance",
        type=float,
        default=1e-6,
        help="relative error tolerance the fit must certify",
    )
    surface_build.add_argument(
        "--probability-lo",
        type=float,
        default=0.99,
        help="lower edge of the certified quantile-level region",
    )
    surface_build.add_argument(
        "--probability-hi",
        type=float,
        default=0.999999,
        help="upper edge of the certified quantile-level region",
    )
    surface_build.add_argument(
        "--load-lo",
        type=float,
        default=None,
        help="lower edge of the certified load region "
        "(default: the one-gamer load)",
    )
    surface_build.add_argument(
        "--load-hi",
        type=float,
        default=None,
        help="upper edge of the certified load region (default: 0.90)",
    )
    _add_json_argument(surface_build)
    surface_info = surface_sub.add_parser(
        "info",
        help="describe persisted quantile surfaces",
    )
    surface_info.add_argument(
        "path",
        type=str,
        help="surface JSON file or directory of surface files",
    )
    _add_json_argument(surface_info)

    validate = sub.add_parser(
        "validate",
        help="sweep analytical quantiles against the batched Monte-Carlo "
        "reference (exit 0 only if every case is within tolerance)",
    )
    validate.add_argument(
        "--preset",
        type=str,
        default="all",
        help="comma-separated preset names, or 'all' for the full registry",
    )
    validate.add_argument(
        "--methods",
        type=str,
        default="all",
        help="comma-separated quantile methods, or 'all' "
        f"({', '.join(QUANTILE_METHODS)})",
    )
    validate.add_argument(
        "--loads",
        type=str,
        default=None,
        help="comma-separated downlink loads to validate at "
        "(default: 0.5,0.7 — erlang-sum is ill-conditioned below ~0.35)",
    )
    validate.add_argument(
        "--probability",
        type=float,
        default=None,
        help="quantile level to compare at (default: 0.999, resolvable "
        "by the Monte-Carlo sample sizes below)",
    )
    validate.add_argument(
        "--samples",
        type=int,
        default=4000,
        help="post-warmup Monte-Carlo bursts per replication",
    )
    validate.add_argument(
        "--reps",
        type=int,
        default=50,
        help="independent Monte-Carlo replications per case",
    )
    validate.add_argument(
        "--warmup",
        type=int,
        default=None,
        help="bursts discarded from each replication before measuring "
        "(default: 500)",
    )
    validate.add_argument("--seed", type=int, default=2006, help="base seed")
    _add_json_argument(validate)

    sim = sub.add_parser("simulate", help="run the discrete-event simulator")
    sim.add_argument(
        "--scenario",
        type=str,
        default=None,
        help="scenario preset name or JSON file (flags below override it)",
    )
    sim.add_argument("--clients", type=int, default=40, help="number of gamers")
    sim.add_argument("--duration", type=float, default=30.0, help="simulated seconds")
    sim.add_argument("--tick-ms", type=float, default=40.0, action=_RecordingAction,
                     help="tick interval in ms")
    sim.add_argument("--server-packet-bytes", type=float, default=125.0,
                     action=_RecordingAction)
    sim.add_argument("--client-packet-bytes", type=float, default=80.0,
                     action=_RecordingAction)
    sim.add_argument("--aggregation-kbps", type=float, default=5000.0,
                     action=_RecordingAction)
    sim.add_argument("--scheduler", choices=["fifo", "priority", "wfq"], default="fifo")
    sim.add_argument("--background-kbps", type=float, default=0.0,
                     help="elastic background traffic rate in kbit/s")
    sim.add_argument("--seed", type=int, default=1)
    _add_json_argument(sim)

    return parser


def _add_json_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead of text"
    )


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario",
        type=str,
        default=None,
        help="scenario preset name or JSON file (flags below override it)",
    )
    parser.add_argument("--tick-ms", type=float, default=40.0, action=_RecordingAction,
                        help="tick interval in ms")
    parser.add_argument("--client-packet-bytes", type=float, default=80.0,
                        action=_RecordingAction)
    parser.add_argument("--server-packet-bytes", type=float, default=125.0,
                        action=_RecordingAction)
    parser.add_argument("--erlang-order", type=int, default=9, action=_RecordingAction)
    parser.add_argument("--uplink-kbps", type=float, default=128.0,
                        action=_RecordingAction)
    parser.add_argument("--downlink-kbps", type=float, default=1024.0,
                        action=_RecordingAction)
    parser.add_argument("--aggregation-kbps", type=float, default=5000.0,
                        action=_RecordingAction)
    _add_json_argument(parser)


#: CLI flag dest -> (Scenario field, unit conversion).
_FLAG_TO_FIELD = {
    "tick_ms": ("tick_interval_s", 1e-3),
    "client_packet_bytes": ("client_packet_bytes", 1.0),
    "server_packet_bytes": ("server_packet_bytes", 1.0),
    "erlang_order": ("erlang_order", 1),
    "uplink_kbps": ("access_uplink_bps", 1e3),
    "downlink_kbps": ("access_downlink_bps", 1e3),
    "aggregation_kbps": ("aggregation_rate_bps", 1e3),
}


def _scenario_from_args(args: argparse.Namespace) -> Scenario:
    """Layer a preset/file (if any) under the explicitly given flags."""
    explicit = getattr(args, "_explicit", set())
    if getattr(args, "scenario", None):
        base = scenario_from_spec(args.scenario)
        overrides = {}
        for dest, (field_name, factor) in _FLAG_TO_FIELD.items():
            if dest in explicit and hasattr(args, dest):
                overrides[field_name] = getattr(args, dest) * factor
        return base.derive(**overrides) if overrides else base
    overrides = {
        field_name: getattr(args, dest) * factor
        for dest, (field_name, factor) in _FLAG_TO_FIELD.items()
        if hasattr(args, dest)
    }
    return Scenario.from_dict(overrides)


def _jsonable(value: Any) -> Any:
    """Recursively convert result objects to JSON-serializable values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def _emit_json(payload: Any) -> int:
    # default=str catches non-dataclass leaves (e.g. fitted distribution
    # objects inside the table results) with their repr.
    print(json.dumps(_jsonable(payload), indent=2, sort_keys=True, default=str))
    return 0


def _command_rtt(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    engine = Engine(scenario, probability=args.quantile, method=args.method)
    model = engine.model_at_load(args.load)
    breakdown = model.breakdown(args.quantile)
    rtt_quantile_s = engine.rtt_quantile(args.load)
    if args.json:
        return _emit_json(
            {
                "scenario": scenario.to_dict(),
                "downlink_load": model.downlink_load,
                "uplink_load": model.uplink_load,
                "num_gamers": model.num_gamers,
                "probability": args.quantile,
                "method": args.method,
                "breakdown": breakdown.as_dict(),
                "rtt_quantile_s": rtt_quantile_s,
                "rtt_quantile_ms": 1e3 * rtt_quantile_s,
            }
        )
    print(
        experiments.format_kv(
            {
                "downlink load": model.downlink_load,
                "uplink load": model.uplink_load,
                "gamers": model.num_gamers,
                "serialization (ms)": 1e3 * breakdown.serialization_s,
                "upstream queueing quantile (ms)": 1e3 * breakdown.upstream_queueing_s,
                "burst delay quantile (ms)": 1e3 * breakdown.downstream_burst_s,
                "packet position quantile (ms)": 1e3 * breakdown.packet_position_s,
                f"RTT {100 * args.quantile:.3f}% quantile (ms)": 1e3 * rtt_quantile_s,
            },
            title="RTT evaluation",
        )
    )
    return 0


def _command_dimension(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    engine = Engine(scenario, probability=args.quantile)
    result = engine.dimension(args.rtt_bound_ms / 1e3)
    if args.json:
        return _emit_json({"scenario": scenario.to_dict(), "result": result.to_dict()})
    print(
        experiments.format_kv(
            {
                "RTT bound (ms)": args.rtt_bound_ms,
                "max downlink load": result.max_load,
                "max gamers": result.max_gamers,
                "RTT at max load (ms)": result.rtt_at_max_load_ms,
            },
            title="Dimensioning",
        )
    )
    return 0


def _command_admit(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    fleet = Fleet()
    if args.surfaces:
        fleet.attach_surfaces(args.surfaces)
    answer = fleet.admit(
        Request(
            scenario,
            kind="admit",
            rtt_budget_ms=args.rtt_budget_ms,
            probability=args.quantile,
            method=args.method,
            downlink_load=args.load,
            num_gamers=args.gamers,
            exact=args.exact,
        )
    )
    if args.json:
        return _emit_json({"scenario": scenario.to_dict(), "result": answer.to_dict()})
    result = answer.result
    rows = {
        "RTT budget (ms)": args.rtt_budget_ms,
        "quantile": f"{args.quantile:g}",
        "admitted": "yes" if answer.admitted else "no",
        "max downlink load": result.max_load,
        "max gamers": result.max_gamers,
        "RTT at max load (ms)": result.rtt_at_max_load_ms,
        "answered from": result.source,
    }
    if result.proposed_load is not None:
        rows["proposed load"] = result.proposed_load
    print(experiments.format_kv(rows, title="Admission control"))
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    # The simulate subparser only carries a subset of the scenario flags;
    # _scenario_from_args skips the absent ones and fills defaults.
    scenario = _scenario_from_args(args)
    if isinstance(scenario, MixScenario):
        simulation = MixGamingSimulation.from_mix(
            scenario,
            num_clients=args.clients,
            scheduler=args.scheduler,
            background_rate_bps=args.background_kbps * 1e3,
            seed=args.seed,
        )
    else:
        simulation = GamingSimulation.from_scenario(
            scenario,
            num_clients=args.clients,
            scheduler=args.scheduler,
            background_rate_bps=args.background_kbps * 1e3,
            seed=args.seed,
        )
    delays = simulation.run(args.duration, warmup_s=min(5.0, args.duration / 10.0))
    if args.json:
        summaries = {
            category: delays.summary(category).as_dict()
            for category in ("upstream", "downstream", "rtt")
            if delays.count(category) > 0
        }
        return _emit_json(
            {
                "scenario": scenario.to_dict(),
                "num_clients": args.clients,
                "scheduler": args.scheduler,
                "duration_s": args.duration,
                "downlink_load": simulation.downlink_load,
                "uplink_load": simulation.uplink_load,
                "delays": summaries,
            }
        )
    rows = {}
    for category in ("upstream", "downstream", "rtt"):
        if delays.count(category) == 0:
            continue
        summary = delays.summary(category)
        rows[f"{category} mean (ms)"] = 1e3 * summary.mean
        rows[f"{category} p99 (ms)"] = 1e3 * summary.p99
    rows["downlink load"] = simulation.downlink_load
    rows["uplink load"] = simulation.uplink_load
    print(experiments.format_kv(rows, title="Simulation"))
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    """Sweep presets x methods x loads against the batched Monte-Carlo.

    Exit code 0 means every case landed inside its method's tolerance
    band; 1 means at least one case missed (the offending rows are
    listed).  Input errors (unknown presets/methods, bad loads) exit 2
    like every other subcommand.
    """
    from .validate import ValidationFleet

    def _spec(raw: str, what: str):
        if raw.strip().lower() == "all":
            return "all"
        names = tuple(part.strip() for part in raw.split(",") if part.strip())
        if not names:
            raise ReproError(f"--{what} must name at least one {what.rstrip('s')}")
        return names

    if args.samples < 1:
        raise ReproError("--samples must be at least 1")
    if args.reps < 1:
        raise ReproError("--reps must be at least 1")
    kwargs = {}
    if args.loads is not None:
        try:
            kwargs["loads"] = tuple(
                float(part) for part in args.loads.split(",") if part.strip()
            )
        except ValueError as exc:
            raise ReproError(f"bad --loads value: {exc}") from exc
    if args.probability is not None:
        kwargs["probability"] = args.probability
    if args.warmup is not None:
        kwargs["warmup"] = args.warmup
    fleet = ValidationFleet(
        _spec(args.preset, "presets"),
        _spec(args.methods, "methods"),
        n_samples=args.samples,
        n_reps=args.reps,
        seed=args.seed,
        **kwargs,
    )
    report = fleet.run()
    if args.json:
        _emit_json(report.as_dict())
    else:
        print(report.format_table())
        failures = report.failures()
        verdict = (
            f"{len(report.cases)} cases, all within tolerance"
            if not failures
            else f"{len(failures)} of {len(report.cases)} cases out of tolerance"
        )
        print(f"[{'PASS' if report.passed else 'FAIL'}] {verdict} "
              f"in {report.elapsed_s:.1f}s")
    return 0 if report.passed else 1


def _command_scenarios(args: argparse.Namespace) -> int:
    """List the registered presets with their key parameters.

    Multi-server mixes appear with the traffic parameters of their
    *tagged* component (the game whose gamers' RTT is served) and a
    ``mix[n]`` marker naming the number of multiplexed servers.
    """
    if args.json:
        return _emit_json(
            {name: scenario.to_dict() for name, scenario in sorted(SCENARIO_PRESETS.items())}
        )
    headers = [
        "preset",
        "tick (ms)",
        "K",
        "P_S (byte)",
        "P_C (byte)",
        "agg (Mbit/s)",
        "prop (ms)",
        "cache key",
    ]
    rows = []
    for name, scenario in sorted(SCENARIO_PRESETS.items()):
        if isinstance(scenario, MixScenario):
            tagged = scenario.tagged_component.scenario
            rows.append(
                [
                    f"{name} mix[{len(scenario.components)}]",
                    1e3 * tagged.tick_interval_s,
                    tagged.erlang_order,
                    tagged.server_packet_bytes,
                    tagged.client_packet_bytes,
                    scenario.aggregation_rate_bps / 1e6,
                    1e3 * tagged.propagation_delay_s,
                    scenario.cache_key(),
                ]
            )
            continue
        rows.append(
            [
                name,
                1e3 * scenario.tick_interval_s,
                scenario.erlang_order,
                scenario.server_packet_bytes,
                scenario.client_packet_bytes,
                scenario.aggregation_rate_bps / 1e6,
                1e3 * scenario.propagation_delay_s,
                scenario.cache_key(),
            ]
        )
    print(experiments.format_table(headers, rows))
    return 0


def _command_fleet(args: argparse.Namespace) -> int:
    """Serve a JSONL request stream incrementally, in bounded windows.

    The input is never slurped: lines are parsed and served window by
    window through :func:`repro.serve.serve_jsonl` (at most
    ``--max-inflight`` windows of ``--window`` requests in flight), and
    each answer is written as soon as its window — and every window
    before it, preserving input order — has been served.  Memory stays
    flat on an arbitrarily long stream; the floats are bit-identical to
    a single whole-stream :meth:`Fleet.serve` pass.
    """
    if args.workers < 1:
        raise ReproError("--workers must be at least 1")
    if args.remote and args.workers > 1:
        raise ReproError(
            "--remote and --workers are mutually exclusive: plans execute "
            "either on remote worker daemons or on a local process pool"
        )
    if args.window < 1:
        raise ReproError("--window must be at least 1")
    if args.max_inflight < 1:
        raise ReproError("--max-inflight must be at least 1")
    fleet = Fleet(
        max_cache_entries=args.max_cache_entries,
        probability=args.quantile,
        method=args.method,
    )
    if args.warm_cache and os.path.exists(args.warm_cache):
        fleet.warm_start(args.warm_cache)
    if args.surfaces:
        # No existence check (contrast --warm-cache): a mistyped surfaces
        # path must fail the run, not silently serve the exact path.
        fleet.attach_surfaces(args.surfaces)

    with contextlib.ExitStack() as stack:
        if args.requests == "-":
            source = sys.stdin
        else:
            source = stack.enter_context(
                open(args.requests, "r", encoding="utf-8")
            )
        if args.output:
            sink = stack.enter_context(open(args.output, "w", encoding="utf-8"))
        else:
            sink = sys.stdout
        executor = None
        if args.remote:
            executor = stack.enter_context(RemoteExecutor(args.remote))
        elif args.workers > 1:
            executor = stack.enter_context(ParallelExecutor(workers=args.workers))

        def write(answer) -> None:
            sink.write(json.dumps(_jsonable(answer.to_dict()), sort_keys=True) + "\n")

        serve_jsonl(
            fleet,
            source,
            write,
            executor=executor,
            max_batch=args.window,
            max_inflight=args.max_inflight,
        )
    if args.warm_cache:
        fleet.save_cache(args.warm_cache)
    if args.stats:
        print(
            json.dumps(fleet.stats.as_dict(), indent=2, sort_keys=True),
            file=sys.stderr,
        )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """Run the asyncio HTTP serving daemon until SIGTERM/SIGINT."""
    if args.workers < 1:
        raise ReproError("--workers must be at least 1")
    if args.remote and args.worker_mode:
        raise ReproError(
            "--worker-mode and --remote are mutually exclusive: a daemon "
            "either executes plans for a front-end or fans them out"
        )
    if args.remote and args.workers > 1:
        raise ReproError(
            "--remote and --workers are mutually exclusive: plans execute "
            "either on remote worker daemons or on a local process pool"
        )
    if args.remote:
        executor = RemoteExecutor(args.remote)
    elif args.workers > 1:
        # A worker daemon's pool must use the spawn start method: forked
        # children would inherit the daemon's listening socket and its
        # accepted keep-alive connections, holding them open after the
        # daemon dies — a SIGKILLed worker would look alive to every
        # front-end until its round-trip timeout instead of failing fast.
        executor = ParallelExecutor(
            workers=args.workers,
            mp_context="spawn" if args.worker_mode else None,
        )
    else:
        executor = None
    daemon = ServingDaemon(
        host=args.host,
        port=args.port,
        executor=executor,
        max_batch=args.max_batch,
        coalesce_ms=args.coalesce_ms,
        max_inflight=args.max_inflight,
        warm_cache=args.warm_cache,
        max_cache_entries=args.max_cache_entries,
        probability=args.quantile,
        method=args.method,
        worker_mode=args.worker_mode,
        surfaces=args.surfaces,
    )
    try:
        asyncio.run(daemon.run())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    finally:
        if executor is not None:
            executor.close()
    return 0


def _surface_summary(surface) -> dict:
    """JSON-ready description of one surface (coefficients elided)."""
    info = dict(surface.build_info)
    return {
        "scenario_key": surface.scenario_key,
        "method": surface.method,
        "load_region": [surface.load_lo, surface.load_hi],
        "probability_region": [surface.probability_lo, surface.probability_hi],
        "certified_rel_bound": surface.certified_rel_bound,
        "tolerance": surface.tolerance,
        "coefficient_grid": list(surface.coef.shape),
        "build_info": info,
    }


def _print_surface_table(surfaces) -> None:
    headers = [
        "scenario key",
        "method",
        "load region",
        "quantile region",
        "grid",
        "certified bound",
    ]
    rows = []
    for surface in surfaces:
        rows.append(
            [
                surface.scenario_key,
                surface.method,
                f"[{surface.load_lo:.4f}, {surface.load_hi:.4f}]",
                f"[{surface.probability_lo}, {surface.probability_hi}]",
                "x".join(str(n) for n in surface.coef.shape),
                f"{surface.certified_rel_bound:.3e}",
            ]
        )
    print(experiments.format_table(headers, rows))


def _command_surface_build(args: argparse.Namespace) -> int:
    """Fit, certify and persist quantile surfaces for one scenario."""
    scenario = scenario_from_spec(args.scenario)
    methods_spec = args.methods.strip()
    if methods_spec.lower() == "all":
        methods = "all"
    else:
        methods = tuple(m.strip() for m in methods_spec.split(",") if m.strip())
        if not methods:
            raise ReproError("--methods must name at least one quantile method")
    index = build_surfaces(
        scenario,
        methods=methods,
        probability_lo=args.probability_lo,
        probability_hi=args.probability_hi,
        load_lo=args.load_lo,
        load_hi=args.load_hi,
        tolerance=args.tolerance,
    )
    if args.out.endswith(os.sep) and not os.path.isdir(args.out):
        os.makedirs(args.out, exist_ok=True)
    count = save_surfaces(index, args.out)
    surfaces = sorted(index, key=lambda s: (s.scenario_key, s.method))
    if args.json:
        return _emit_json(
            {
                "out": args.out,
                "surfaces_saved": count,
                "surfaces": [_surface_summary(s) for s in surfaces],
            }
        )
    _print_surface_table(surfaces)
    print(f"saved {count} surface(s) to {args.out}")
    return 0


def _command_surface_info(args: argparse.Namespace) -> int:
    """Describe persisted quantile surfaces."""
    index = load_surfaces(args.path)
    surfaces = sorted(index, key=lambda s: (s.scenario_key, s.method))
    if args.json:
        return _emit_json(
            {
                "path": args.path,
                "surfaces": [_surface_summary(s) for s in surfaces],
            }
        )
    _print_surface_table(surfaces)
    return 0


def _command_surface(args: argparse.Namespace) -> int:
    if args.surface_command == "build":
        return _command_surface_build(args)
    return _command_surface_info(args)


#: command -> (runner, text formatter) for the table/figure subcommands.
_REPORT_COMMANDS = {
    "table1": (experiments.run_table1, experiments.format_table1),
    "table2": (experiments.run_table2, experiments.format_table2),
    "table3": (experiments.run_table3, experiments.format_table3),
    "figure1": (experiments.run_figure1, experiments.format_figure1),
    "figure3": (experiments.run_figure3, experiments.format_figure3),
    "figure4": (experiments.run_figure4, experiments.format_figure4),
    "compare-access": (
        experiments.run_access_comparison,
        experiments.format_access_comparison,
    ),
    "compare-mix": (
        experiments.run_mix_comparison,
        experiments.format_mix_comparison,
    ),
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (returns the process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "rtt":
            return _command_rtt(args)
        if args.command == "dimension":
            return _command_dimension(args)
        if args.command == "admit":
            return _command_admit(args)
        if args.command == "simulate":
            return _command_simulate(args)
        if args.command == "validate":
            return _command_validate(args)
        if args.command == "scenarios":
            return _command_scenarios(args)
        if args.command in ("fleet", "batch"):
            return _command_fleet(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "surface":
            return _command_surface(args)
        if args.command in _REPORT_COMMANDS:
            run, fmt = _REPORT_COMMANDS[args.command]
            result = run()
            if args.json:
                return _emit_json({args.command: result})
            print(fmt(result))
            return 0
    except (ReproError, KeyError, json.JSONDecodeError, OSError) as exc:
        # Bad preset names, malformed scenario/request files, missing
        # paths and out-of-range parameters produce a one-line error,
        # not a traceback.
        if isinstance(exc, OSError) and exc.strerror:
            message = f"{exc.strerror}: {exc.filename}" if exc.filename else exc.strerror
        else:
            message = exc.args[0] if exc.args else str(exc)
        print(f"{parser.prog}: error: {message}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
