"""Command-line interface.

``fps-ping`` (or ``python -m repro``) exposes the experiment drivers and
the RTT calculator from the shell::

    fps-ping rtt --load 0.4 --erlang-order 9 --tick-ms 40
    fps-ping dimension --rtt-bound-ms 50
    fps-ping table1 | table2 | table3 | figure1 | figure3 | figure4
    fps-ping simulate --clients 40 --duration 30
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import experiments
from .core import PingTimeModel
from .core.dimensioning import max_tolerable_load
from .netsim import AccessNetworkConfig, GamingSimulation, GamingWorkload
from .scenarios import DslScenario

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="fps-ping",
        description="Ping-time prediction for First Person Shooter games "
        "(reproduction of Degrande et al., 2006).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rtt = sub.add_parser("rtt", help="evaluate the RTT quantile at one operating point")
    _add_scenario_arguments(rtt)
    rtt.add_argument("--load", type=float, default=0.4, help="downlink load (0-1)")
    rtt.add_argument("--quantile", type=float, default=0.99999, help="quantile level")
    rtt.add_argument(
        "--method",
        choices=["inversion", "dominant-pole", "chernoff", "sum-of-quantiles"],
        default="inversion",
        help="quantile evaluation method",
    )

    dim = sub.add_parser("dimension", help="maximum load / gamers for an RTT budget")
    _add_scenario_arguments(dim)
    dim.add_argument("--rtt-bound-ms", type=float, default=50.0, help="RTT budget in ms")
    dim.add_argument("--quantile", type=float, default=0.99999, help="quantile level")

    for name, help_text in [
        ("table1", "regenerate Table 1 (Counter-Strike characteristics)"),
        ("table2", "regenerate Table 2 (Half-Life characteristics)"),
        ("table3", "regenerate Table 3 (Unreal Tournament trace)"),
        ("figure1", "regenerate Figure 1 (burst-size tail fits)"),
        ("figure3", "regenerate Figure 3 (RTT vs load per Erlang order)"),
        ("figure4", "regenerate Figure 4 (RTT vs load per tick interval)"),
    ]:
        sub.add_parser(name, help=help_text)

    sim = sub.add_parser("simulate", help="run the discrete-event simulator")
    sim.add_argument("--clients", type=int, default=40, help="number of gamers")
    sim.add_argument("--duration", type=float, default=30.0, help="simulated seconds")
    sim.add_argument("--tick-ms", type=float, default=40.0, help="tick interval in ms")
    sim.add_argument("--server-packet-bytes", type=float, default=125.0)
    sim.add_argument("--client-packet-bytes", type=float, default=80.0)
    sim.add_argument("--aggregation-kbps", type=float, default=5000.0)
    sim.add_argument("--scheduler", choices=["fifo", "priority", "wfq"], default="fifo")
    sim.add_argument("--background-kbps", type=float, default=0.0,
                     help="elastic background traffic rate in kbit/s")
    sim.add_argument("--seed", type=int, default=1)

    return parser


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tick-ms", type=float, default=40.0, help="tick interval in ms")
    parser.add_argument("--client-packet-bytes", type=float, default=80.0)
    parser.add_argument("--server-packet-bytes", type=float, default=125.0)
    parser.add_argument("--erlang-order", type=int, default=9)
    parser.add_argument("--uplink-kbps", type=float, default=128.0)
    parser.add_argument("--downlink-kbps", type=float, default=1024.0)
    parser.add_argument("--aggregation-kbps", type=float, default=5000.0)


def _scenario_from_args(args: argparse.Namespace) -> DslScenario:
    return DslScenario(
        client_packet_bytes=args.client_packet_bytes,
        server_packet_bytes=args.server_packet_bytes,
        tick_interval_s=args.tick_ms / 1e3,
        erlang_order=args.erlang_order,
        access_uplink_bps=args.uplink_kbps * 1e3,
        access_downlink_bps=args.downlink_kbps * 1e3,
        aggregation_rate_bps=args.aggregation_kbps * 1e3,
    )


def _command_rtt(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    model: PingTimeModel = scenario.model_at_load(args.load)
    breakdown = model.breakdown(args.quantile)
    print(
        experiments.format_kv(
            {
                "downlink load": model.downlink_load,
                "uplink load": model.uplink_load,
                "gamers": model.num_gamers,
                "serialization (ms)": 1e3 * breakdown.serialization_s,
                "upstream queueing quantile (ms)": 1e3 * breakdown.upstream_queueing_s,
                "burst delay quantile (ms)": 1e3 * breakdown.downstream_burst_s,
                "packet position quantile (ms)": 1e3 * breakdown.packet_position_s,
                f"RTT {100 * args.quantile:.3f}% quantile (ms)": 1e3
                * model.rtt_quantile(args.quantile, method=args.method),
            },
            title="RTT evaluation",
        )
    )
    return 0


def _command_dimension(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    result = max_tolerable_load(
        args.rtt_bound_ms / 1e3,
        probability=args.quantile,
        **scenario.dimensioning_kwargs(),
    )
    print(
        experiments.format_kv(
            {
                "RTT bound (ms)": args.rtt_bound_ms,
                "max downlink load": result.max_load,
                "max gamers": result.max_gamers,
                "RTT at max load (ms)": result.rtt_at_max_load_ms,
            },
            title="Dimensioning",
        )
    )
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    config = AccessNetworkConfig(
        num_clients=args.clients,
        aggregation_rate_bps=args.aggregation_kbps * 1e3,
        scheduler=args.scheduler,
    )
    workload = GamingWorkload(
        client_packet_bytes=args.client_packet_bytes,
        server_packet_bytes=args.server_packet_bytes,
        tick_interval_s=args.tick_ms / 1e3,
        background_rate_bps=args.background_kbps * 1e3,
    )
    simulation = GamingSimulation(config, workload, seed=args.seed)
    delays = simulation.run(args.duration, warmup_s=min(5.0, args.duration / 10.0))
    rows = {}
    for category in ("upstream", "downstream", "rtt"):
        if delays.count(category) == 0:
            continue
        summary = delays.summary(category)
        rows[f"{category} mean (ms)"] = 1e3 * summary.mean
        rows[f"{category} p99 (ms)"] = 1e3 * summary.p99
    rows["downlink load"] = simulation.downlink_load
    rows["uplink load"] = simulation.uplink_load
    print(experiments.format_kv(rows, title="Simulation"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (returns the process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "rtt":
        return _command_rtt(args)
    if args.command == "dimension":
        return _command_dimension(args)
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "table1":
        print(experiments.format_table1(experiments.run_table1()))
        return 0
    if args.command == "table2":
        print(experiments.format_table2(experiments.run_table2()))
        return 0
    if args.command == "table3":
        print(experiments.format_table3(experiments.run_table3()))
        return 0
    if args.command == "figure1":
        print(experiments.format_figure1(experiments.run_figure1()))
        return 0
    if args.command == "figure3":
        print(experiments.format_figure3(experiments.run_figure3()))
        return 0
    if args.command == "figure4":
        print(experiments.format_figure4(experiments.run_figure4()))
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
