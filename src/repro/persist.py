"""Atomic file persistence shared by every on-disk artifact.

The fleet answer cache (:meth:`repro.fleet.Fleet.save_cache`) and the
certified quantile surfaces (:mod:`repro.surface.store`) are both
written with the same crash-safe scheme: the payload goes to a
temporary file in the target directory and is moved over the
destination with :func:`os.replace`, so a crash mid-write or a
concurrent reader never sees a truncated file — either the previous
artifact or the new one, never garbage.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path
from typing import Optional, Union

__all__ = ["atomic_write_text"]

#: Distinguishes concurrent writers' temp files (PID + counter).
_TEMP_COUNTER = itertools.count()


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The write is durable before it becomes visible (the payload is
    fsynced ahead of the rename) and permission-preserving: an existing
    target keeps its mode (an operator's ``chmod`` survives the
    rewrite), while a fresh target gets exactly the permissions a plain
    ``open()`` would have produced under the process's live umask.
    """
    # Resolve symlinks first: os.replace would otherwise swap the link
    # itself for a regular file, leaving the linked-to artifact (e.g. a
    # shared location) stale for every other consumer.
    target = Path(os.path.realpath(path))
    temp_name: Optional[str] = None
    try:
        # Create the temp file with mode 0666 and O_EXCL: the kernel
        # applies the process's LIVE umask at creation (no racy
        # os.umask read).
        while True:
            candidate = target.with_name(
                f"{target.name}.{os.getpid()}.{next(_TEMP_COUNTER)}.tmp"
            )
            try:
                descriptor = os.open(
                    candidate, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o666
                )
            except FileExistsError:  # pragma: no cover - stale leftover
                continue
            temp_name = str(candidate)
            break
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
            # Push the payload to disk before the rename becomes
            # visible: without the fsync a power loss can commit the
            # rename ahead of the data blocks, leaving exactly the
            # truncated file this write scheme exists to avoid.
            handle.flush()
            os.fsync(handle.fileno())
        try:
            os.chmod(temp_name, os.stat(target).st_mode & 0o7777)
        except OSError:
            pass  # fresh target: keep the umask-derived mode
        os.replace(temp_name, target)
    except BaseException:
        if temp_name is not None:
            try:
                os.unlink(temp_name)
            except OSError:  # pragma: no cover - already moved
                pass
        raise
