"""Executors that run compiled :class:`~repro.core.rtt.EvalPlan` units.

The serving path is split into three phases — **plan** (compile a
request batch into picklable, self-contained work units, see
:func:`repro.core.rtt.compile_eval_plans`), **execute** (this module)
and **assemble** (merge the partial results back into the caller's
caches and statistics).  The execute phase is deliberately dumb: an
executor receives a sequence of plans and returns one
:class:`~repro.core.rtt.PlanResult` per plan, in order.  Because a plan
carries only model parameters and the evaluation kernels are stateless,
*where* a plan runs cannot change a single float:

* :class:`SerialExecutor` runs the plans in-process, in order — the
  reference implementation and the zero-dependency default;
* :class:`ParallelExecutor` fans the plans out over a
  :class:`concurrent.futures.ProcessPoolExecutor`; the stacked groups
  behind the plans are embarrassingly parallel, so a cold multi-scenario
  stream scales with the worker count (see
  ``benchmarks/bench_parallel.py``) while returning answers
  bit-identical to the serial path.

Both executors also expose :meth:`Executor.run_async` for asyncio
callers (used by :class:`repro.fleet.AsyncFleet`): the serial executor
offloads to the event loop's default thread pool, the parallel executor
wraps its process-pool futures directly, so the event loop stays free
while plans execute.

Example::

    from repro import Fleet, ParallelExecutor, Request

    fleet = Fleet()
    with ParallelExecutor(workers=4) as executor:
        answers = fleet.serve(requests, executor=executor)
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import multiprocessing
import os
from typing import Iterable, List, Optional, Sequence, Union

from .core.rtt import EvalPlan, PlanResult, execute_plan
from .errors import ExecutorBrokenError, ParameterError

__all__ = ["Executor", "SerialExecutor", "ParallelExecutor", "ExecutorBrokenError"]


class Executor:
    """Interface shared by every plan executor.

    Subclasses implement :meth:`run`; :meth:`run_async` has a default
    thread-offload implementation so any executor is usable from
    asyncio.  Executors are context managers — :meth:`close` releases
    whatever workers they hold (a no-op for in-process executors).
    """

    #: Nominal degree of parallelism (1 for in-process executors).
    workers: int = 1

    def run(self, plans: Iterable[EvalPlan]) -> List[PlanResult]:
        """Execute the plans, returning one result per plan, in order."""
        raise NotImplementedError

    async def run_async(self, plans: Iterable[EvalPlan]) -> List[PlanResult]:
        """Asyncio variant of :meth:`run` (default: a worker thread).

        The default implementation offloads the whole :meth:`run` call
        to the event loop's default thread-pool executor, so the loop
        keeps serving other coroutines while the plans execute.
        """
        plans = list(plans)
        if not plans:
            return []
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.run, plans)

    def close(self) -> None:
        """Release the executor's workers (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """Runs every plan in-process, in order (the reference executor)."""

    workers = 1

    def run(self, plans: Iterable[EvalPlan]) -> List[PlanResult]:
        return [execute_plan(plan) for plan in plans]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Fans plans out over a process pool; floats identical to serial.

    Parameters
    ----------
    workers:
        Number of worker processes (default: the machine's CPU count).
    mp_context:
        Optional :mod:`multiprocessing` start-method name (``"fork"``,
        ``"spawn"``, ``"forkserver"``) or context object, forwarded to
        :class:`concurrent.futures.ProcessPoolExecutor`.  The platform
        default is used when omitted.

    The pool is created lazily on the first :meth:`run` /
    :meth:`run_async` call and persists across calls (a long-running
    service pays the spawn cost once); :meth:`close` shuts it down.
    Because every plan is self-contained and every result carries its
    own counters, the answers — and the folded statistics — are
    bit-identical to :class:`SerialExecutor` for any worker count.

    A killed or crashed worker breaks a
    :class:`~concurrent.futures.ProcessPoolExecutor` permanently; this
    executor translates that into a typed
    :class:`~repro.errors.ExecutorBrokenError` **and disposes the dead
    pool**, so the next call spawns a fresh one instead of failing
    forever — the recovery a long-running serving process needs.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        mp_context: Union[str, multiprocessing.context.BaseContext, None] = None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if int(workers) < 1:
            raise ParameterError("workers must be at least 1")
        self.workers = int(workers)
        if isinstance(mp_context, str):
            mp_context = multiprocessing.get_context(mp_context)
        self._mp_context = mp_context
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "idle" if self._pool is None else "running"
        return f"ParallelExecutor(workers={self.workers}, pool={state})"

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._mp_context
            )
        return self._pool

    def _submit(
        self, plans: Sequence[EvalPlan]
    ) -> List["concurrent.futures.Future[PlanResult]"]:
        pool = self._ensure_pool()
        return [pool.submit(execute_plan, plan) for plan in plans]

    def _dispose_broken_pool(
        self, cause: concurrent.futures.BrokenExecutor
    ) -> ExecutorBrokenError:
        """Drop the dead pool and build the typed error to raise.

        After disposal the next :meth:`run` / :meth:`run_async` call
        lazily spawns a fresh pool, so one dead worker does not poison
        every later batch of a long-running service.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        return ExecutorBrokenError(
            f"the worker pool died while executing plans ({cause}); the pool "
            "has been disposed and the next run will spawn a fresh one"
        )

    def run(self, plans: Iterable[EvalPlan]) -> List[PlanResult]:
        plans = list(plans)
        if not plans:
            return []
        try:
            return [future.result() for future in self._submit(plans)]
        except concurrent.futures.BrokenExecutor as exc:
            raise self._dispose_broken_pool(exc) from exc

    async def run_async(self, plans: Iterable[EvalPlan]) -> List[PlanResult]:
        plans = list(plans)
        if not plans:
            return []
        try:
            futures = self._submit(plans)
            return list(
                await asyncio.gather(*(asyncio.wrap_future(f) for f in futures))
            )
        except concurrent.futures.BrokenExecutor as exc:
            raise self._dispose_broken_pool(exc) from exc

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    #: Context-manager alias kept explicit for symmetry with the docs.
    shutdown = close
