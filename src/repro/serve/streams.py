"""Bounded in-flight JSONL streaming shared by the daemon and the CLI.

A million-line request file (or an equally long HTTP body) must not be
slurped into memory before the first answer comes out.  This module
provides the sliding-window discipline both entry points share:

* :func:`parse_request_line` turns one JSONL line into a
  :class:`~repro.fleet.Request`, wrapping **every** parse failure —
  including invalid JSON, which used to escape as a bare
  ``json.JSONDecodeError`` traceback — as a typed
  :class:`~repro.errors.ReproError` carrying the 1-based line number;
* :func:`iter_request_windows` batches a line stream into serving
  windows of at most ``max_batch`` requests;
* :func:`stream_requests` is the pipeline: windows are submitted to an
  async ``serve`` callable with **at most ``max_inflight`` windows in
  flight**; the producer is back-pressured (it stops reading lines while
  the window budget is exhausted) and answers are emitted incrementally,
  in input order, through an async ``emit`` callable — so memory stays
  flat however long the stream;
* :func:`serve_jsonl` wraps the pipeline for synchronous callers (the
  CLI's ``fleet``/``batch`` subcommand): plain line iterator in,
  write-callback out, served through an
  :class:`~repro.fleet.AsyncFleet` on its own event loop.

The emit order is *input* order even though windows complete out of
order: completed windows are drained strictly in submission order, so a
slow window holds back the ones behind it (bounded buffering) instead of
reordering the output.
"""

from __future__ import annotations

import asyncio
import json
from typing import (
    Any,
    AsyncIterator,
    Awaitable,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Union,
)

from ..errors import ReproError
from ..fleet import Answer, AsyncFleet, Fleet, Request

__all__ = [
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_INFLIGHT",
    "parse_request_line",
    "iter_request_windows",
    "stream_requests",
    "serve_jsonl",
]

#: Default serving-window size (requests per batch handed to the fleet).
DEFAULT_MAX_BATCH = 64

#: Default number of windows allowed in flight at once.
DEFAULT_MAX_INFLIGHT = 4


def parse_request_line(number: int, line: str) -> Optional[Request]:
    """Parse one JSONL request line (``number`` is 1-based).

    Blank lines return ``None``.  Invalid JSON, non-object records and
    bad request fields all raise :class:`~repro.errors.ReproError` whose
    message names the offending line, so a typo on line 400 000 of a
    stream is reported as ``request line 400000: ...`` instead of a
    traceback.
    """
    text = line.strip()
    if not text:
        return None
    try:
        record = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"request line {number}: invalid JSON: {exc}") from exc
    if not isinstance(record, dict):
        raise ReproError(f"request line {number} is not a JSON object")
    try:
        return Request.from_dict(record)
    except ReproError as exc:
        message = exc.args[0] if exc.args else str(exc)
        raise ReproError(f"request line {number}: {message}") from exc


async def _aiter_lines(
    lines: Union[Iterable[str], AsyncIterator[str]]
) -> AsyncIterator[str]:
    """Adapt a plain iterable of lines to an async iterator."""
    if hasattr(lines, "__aiter__"):
        async for line in lines:  # type: ignore[union-attr]
            yield line
        return
    for line in lines:  # type: ignore[union-attr]
        yield line


async def iter_request_windows(
    lines: Union[Iterable[str], AsyncIterator[str]],
    *,
    max_batch: int = DEFAULT_MAX_BATCH,
    start_line: int = 1,
) -> AsyncIterator[List[Request]]:
    """Batch a JSONL line stream into windows of at most ``max_batch``.

    Lines are parsed lazily — a parse error surfaces only once the
    stream reaches the bad line, after every earlier window has been
    yielded (and typically already served).
    """
    if int(max_batch) < 1:
        raise ReproError("max_batch must be at least 1")
    window: List[Request] = []
    number = start_line - 1
    async for line in _aiter_lines(lines):
        number += 1
        request = parse_request_line(number, line)
        if request is None:
            continue
        window.append(request)
        if len(window) >= max_batch:
            yield window
            window = []
    if window:
        yield window


async def stream_requests(
    lines: Union[Iterable[str], AsyncIterator[str]],
    serve: Callable[[List[Request]], Awaitable[List[Answer]]],
    emit: Callable[[Answer], Awaitable[Any]],
    *,
    max_batch: int = DEFAULT_MAX_BATCH,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    start_line: int = 1,
) -> int:
    """Pump a JSONL line stream through ``serve`` in bounded windows.

    At most ``max_inflight`` windows are being served at any moment; the
    producer side stops parsing lines while the budget is exhausted
    (back-pressure), and answers are awaited window by window **in
    submission order** and handed to ``emit`` one at a time — ``emit``
    may itself apply downstream back-pressure (e.g. awaiting a socket
    drain).  Returns the number of answers emitted.

    A parse or serving error cancels the windows still in flight and
    propagates; answers of windows fully drained before the error are
    already emitted (streaming output cannot be un-written).
    """
    if int(max_inflight) < 1:
        raise ReproError("max_inflight must be at least 1")
    inflight: "asyncio.Queue[Optional[asyncio.Task]]" = asyncio.Queue()
    emitted = 0

    async def drain_one() -> None:
        nonlocal emitted
        task = inflight.get_nowait()
        assert task is not None
        for answer in await task:
            await emit(answer)
            emitted += 1

    tasks: List[asyncio.Task] = []
    try:
        async for window in iter_request_windows(
            lines, max_batch=max_batch, start_line=start_line
        ):
            task = asyncio.ensure_future(serve(window))
            tasks.append(task)
            inflight.put_nowait(task)
            # Back-pressure: block the producer on the oldest window
            # once the in-flight budget is reached.
            while inflight.qsize() >= max_inflight:
                await drain_one()
        while inflight.qsize():
            await drain_one()
    except BaseException:
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        raise
    return emitted


def serve_jsonl(
    fleet: Union[Fleet, AsyncFleet],
    lines: Iterable[str],
    write: Callable[[Answer], Any],
    *,
    executor=None,
    max_batch: int = DEFAULT_MAX_BATCH,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
) -> int:
    """Serve a synchronous JSONL line stream with bounded windows.

    The synchronous entry point used by the CLI: ``lines`` is any plain
    iterator of text lines (an open file, ``sys.stdin``), ``write`` is
    called once per :class:`~repro.fleet.Answer` in input order, as soon
    as the answer's window (and every window before it) has been served
    — so a long stream produces output incrementally while holding at
    most ``max_inflight * max_batch`` requests in memory.  Answers are
    bit-identical to a single :meth:`Fleet.serve` pass over the same
    stream, whatever the window boundaries.  Returns the number of
    answers written.
    """
    async_fleet = fleet if isinstance(fleet, AsyncFleet) else AsyncFleet(fleet)

    async def main() -> int:
        async def serve(window: List[Request]) -> List[Answer]:
            return await async_fleet.serve_async(window, executor=executor)

        async def emit(answer: Answer) -> None:
            write(answer)

        return await stream_requests(
            lines, serve, emit, max_batch=max_batch, max_inflight=max_inflight
        )

    return asyncio.run(main())
