"""The serving subsystem: production front-end over the plan/execute stack.

Three cooperating pieces turn the batch-oriented
:class:`~repro.fleet.Fleet` into a long-running, heavy-traffic service
(stdlib-only — asyncio, no HTTP framework):

* :mod:`repro.serve.coalescer` — :class:`RequestCoalescer` gathers
  concurrent requests into micro-batch windows (flush on size or
  delay), serves each window as one stacked batch through
  :meth:`~repro.fleet.AsyncFleet.serve_async`, and single-flights
  identical in-flight misses so every operating point is evaluated
  exactly once per window;
* :mod:`repro.serve.streams` — the bounded in-flight JSONL pipeline
  (line-numbered parsing, at most a few windows in flight,
  back-pressure on the producer, in-order incremental emission) shared
  by the daemon's ``/v1/batch`` handling and the CLI's
  ``fleet``/``batch`` subcommand;
* :mod:`repro.serve.wire` — the length-prefixed plan protocol of the
  distributed execution tier: versioned frames carrying
  :class:`~repro.core.rtt.EvalPlan` units to worker daemons and
  :class:`~repro.core.rtt.PlanResult` values (or typed errors) back,
  with malformed, truncated or version-skewed frames raising
  :class:`~repro.errors.WireFormatError` instead of hanging;
* :mod:`repro.serve.daemon` — :class:`ServingDaemon`, the asyncio
  HTTP/1.1 server behind ``fps-ping serve``: ``POST /v1/rtt``,
  streaming ``POST /v1/batch``, ``GET /healthz`` / ``GET /stats``,
  ``POST /v1/plan`` in ``--worker-mode``, warm-cache load at startup,
  atomic persist and graceful drain on SIGTERM/SIGINT.
"""

from . import wire
from .coalescer import RequestCoalescer
from .daemon import DEFAULT_PORT, ServingDaemon
from .streams import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_INFLIGHT,
    iter_request_windows,
    parse_request_line,
    serve_jsonl,
    stream_requests,
)

__all__ = [
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_PORT",
    "RequestCoalescer",
    "ServingDaemon",
    "iter_request_windows",
    "parse_request_line",
    "serve_jsonl",
    "stream_requests",
    "wire",
]
