"""The length-prefixed plan protocol of the distributed execution tier.

A :class:`~repro.executors.RemoteExecutor` ships compiled
:class:`~repro.core.rtt.EvalPlan` units to worker daemons and receives
one :class:`~repro.core.rtt.PlanResult` (or a typed error) back.  Plans
were deliberately made picklable, self-contained messages by the
plan/execute split, so the transport is a framing problem: every
message on the wire is one **frame** —

::

    +-------+---------+------+-------+----------+-----------------+
    | magic | version | kind | flags | length   | payload         |
    | 4 B   | u16     | u8   | u8    | u32      | `length` bytes  |
    +-------+---------+------+-------+----------+-----------------+
    'FPSW'   big-endian                big-endian  pickled object

with three frame kinds: :data:`KIND_PLAN` carries an ``EvalPlan`` to a
worker, :data:`KIND_RESULT` a ``PlanResult`` back, and
:data:`KIND_ERROR` a pickled exception (the typed
:class:`~repro.errors.ReproError` a bad plan raised, exactly what an
in-process execution would have surfaced).  The explicit version field
makes a rolling upgrade fail loudly — a version-skewed frame raises
:class:`~repro.errors.WireFormatError`, never a silent mis-decode — and
the length prefix bounds every read: malformed, truncated or oversized
frames raise typed errors; nothing in this module can hang on corrupt
input.

The payload is a pickle, which makes the protocol **trusted-tier
only**: a worker daemon unpickles what the front-end sends (and vice
versa), so the plan port must never be exposed beyond the serving
cluster's trust boundary — exactly like any other pickle-over-IPC
(:class:`~repro.executors.ParallelExecutor` ships the same bytes to its
pool workers).  The frame layout is transport-agnostic: the daemon
carries frames as ``POST /v1/plan`` HTTP bodies, and the framing
discipline (explicit header, version, typed decode errors) follows the
classic event-driven reliable-transfer design where every message is
parsed from a self-describing header before a single payload byte is
trusted.

Example::

    frame = encode_plan(plan)                  # front-end -> worker
    kind, payload = decode_frame(frame)        # worker side
    result_frame = encode_result(execute_plan(payload))
    result = decode_result(result_frame)       # front-end side
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from typing import Any, Tuple

from ..core.rtt import EvalPlan, PlanResult
from ..errors import ReproError, WireFormatError

__all__ = [
    "PROTOCOL_VERSION",
    "HEADER_SIZE",
    "MAX_FRAME_BYTES",
    "KIND_PLAN",
    "KIND_RESULT",
    "KIND_ERROR",
    "encode_frame",
    "encode_plan",
    "encode_result",
    "encode_error",
    "parse_header",
    "decode_frame",
    "decode_plan",
    "decode_result",
    "read_frame",
]

#: Protocol version; bumped on any frame-layout or payload change.
PROTOCOL_VERSION = 1

#: The frame magic ("FPS wire").
MAGIC = b"FPSW"

#: magic(4) + version(u16) + kind(u8) + flags(u8) + length(u32).
_HEADER = struct.Struct(">4sHBBI")
HEADER_SIZE = _HEADER.size

#: Upper bound on one frame's payload; a corrupt length prefix must not
#: make a reader allocate gigabytes.  A full-size 32-model plan pickles
#: to a few kilobytes, so 64 MiB is orders of magnitude of headroom.
MAX_FRAME_BYTES = 64 * 1024 * 1024

KIND_PLAN = 1
KIND_RESULT = 2
KIND_ERROR = 3

_KIND_NAMES = {KIND_PLAN: "plan", KIND_RESULT: "result", KIND_ERROR: "error"}

#: Payload type each frame kind must decode to.
_KIND_TYPES = {KIND_PLAN: EvalPlan, KIND_RESULT: PlanResult, KIND_ERROR: BaseException}


def encode_frame(kind: int, payload: Any) -> bytes:
    """Frame an object: header + pickled payload, ready for the wire."""
    if kind not in _KIND_NAMES:
        raise WireFormatError(f"unknown frame kind {kind!r}")
    expected = _KIND_TYPES[kind]
    if not isinstance(payload, expected):
        raise WireFormatError(
            f"a {_KIND_NAMES[kind]} frame must carry {expected.__name__}, "
            f"not {type(payload).__name__}",
            kind=_KIND_NAMES[kind],
        )
    body = pickle.dumps(payload)
    if len(body) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound",
            kind=_KIND_NAMES[kind],
        )
    return _HEADER.pack(MAGIC, PROTOCOL_VERSION, kind, 0, len(body)) + body


def encode_plan(plan: EvalPlan) -> bytes:
    """Frame one :class:`~repro.core.rtt.EvalPlan` for a worker."""
    return encode_frame(KIND_PLAN, plan)


def encode_result(result: PlanResult) -> bytes:
    """Frame one :class:`~repro.core.rtt.PlanResult` for the front-end."""
    return encode_frame(KIND_RESULT, result)


def encode_error(exc: BaseException) -> bytes:
    """Frame an execution error (typed errors survive the round trip).

    An exception that does not pickle (some carry live handles) is
    downgraded to a :class:`~repro.errors.ReproError` holding its repr,
    so the front-end always gets *an* error frame, never a worker-side
    encoding crash.
    """
    try:
        return encode_frame(KIND_ERROR, exc)
    except Exception:
        fallback = ReproError(f"{type(exc).__name__}: {exc}")
        return encode_frame(KIND_ERROR, fallback)


def parse_header(header: bytes) -> Tuple[int, int]:
    """Validate a frame header; returns ``(kind, payload_length)``.

    Raises :class:`~repro.errors.WireFormatError` on short input, bad
    magic, a version mismatch, an unknown kind or an oversized length —
    each with a message naming exactly what is wrong, so a protocol
    skew between front-end and worker is a one-line diagnosis.
    """
    if len(header) < HEADER_SIZE:
        raise WireFormatError(
            f"truncated frame header: {len(header)} of {HEADER_SIZE} bytes"
        )
    magic, version, kind, _flags, length = _HEADER.unpack(header[:HEADER_SIZE])
    if magic != MAGIC:
        raise WireFormatError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise WireFormatError(
            f"unsupported plan-protocol version {version} "
            f"(this build speaks {PROTOCOL_VERSION})"
        )
    if kind not in _KIND_NAMES:
        raise WireFormatError(f"unknown frame kind {kind}")
    if length > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte bound",
            kind=_KIND_NAMES[kind],
        )
    return kind, length


def decode_frame(data: bytes) -> Tuple[int, Any]:
    """Decode one complete frame; returns ``(kind, payload object)``.

    The buffer must hold exactly one frame (header + payload): a
    truncated or over-long buffer, a corrupt pickle, or a payload whose
    type does not match the frame kind all raise
    :class:`~repro.errors.WireFormatError`.
    """
    kind, length = parse_header(data)
    body = data[HEADER_SIZE:]
    if len(body) != length:
        raise WireFormatError(
            f"frame payload is {len(body)} bytes, header promised {length}",
            kind=_KIND_NAMES[kind],
        )
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise WireFormatError(
            f"frame payload does not unpickle: {exc!r}", kind=_KIND_NAMES[kind]
        ) from exc
    if not isinstance(payload, _KIND_TYPES[kind]):
        raise WireFormatError(
            f"a {_KIND_NAMES[kind]} frame decoded to {type(payload).__name__}",
            kind=_KIND_NAMES[kind],
        )
    return kind, payload


def decode_plan(data: bytes) -> EvalPlan:
    """Decode a frame that must carry an :class:`EvalPlan`."""
    kind, payload = decode_frame(data)
    if kind != KIND_PLAN:
        raise WireFormatError(
            f"expected a plan frame, got a {_KIND_NAMES[kind]} frame",
            kind=_KIND_NAMES[kind],
        )
    return payload


def decode_result(data: bytes) -> PlanResult:
    """Decode a worker's response frame.

    A result frame returns the :class:`PlanResult`; an error frame
    **re-raises the worker's exception** — the typed
    :class:`~repro.errors.ReproError` a bad plan produced propagates to
    the caller exactly as an in-process execution would have raised it.
    """
    kind, payload = decode_frame(data)
    if kind == KIND_ERROR:
        raise payload
    if kind != KIND_RESULT:
        raise WireFormatError(
            f"expected a result frame, got a {_KIND_NAMES[kind]} frame",
            kind=_KIND_NAMES[kind],
        )
    return payload


async def read_frame(reader: asyncio.StreamReader) -> Tuple[int, Any]:
    """Read one frame from a stream; returns ``(kind, payload object)``.

    The header is read first and validated before a single payload byte
    is trusted, so the reader never allocates more than the declared
    (and bounded) payload length.  A connection that closes mid-frame
    raises :class:`~repro.errors.WireFormatError` — a truncated frame
    is a protocol failure, not a hang.
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise WireFormatError("connection closed before a frame header") from exc
        raise WireFormatError(
            f"connection closed inside a frame header "
            f"({len(exc.partial)} of {HEADER_SIZE} bytes)"
        ) from exc
    kind, length = parse_header(header)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireFormatError(
            f"connection closed inside a {_KIND_NAMES[kind]} frame "
            f"({len(exc.partial)} of {length} payload bytes)",
            kind=_KIND_NAMES[kind],
        ) from exc
    return decode_frame(header + body)
