"""Request coalescing: many concurrent callers, one stacked batch.

The stacking win of the cross-model inverter *grows* with batch
heterogeneity — a batch of requests spanning several scenarios costs one
joint array evaluation per search round instead of one per model.  A
long-running service therefore wants to gather the independent requests
arriving within a few milliseconds of each other into **one** batch
before handing them to the fleet.  :class:`RequestCoalescer` does
exactly that:

* concurrent :meth:`~RequestCoalescer.submit` calls accumulate in a
  pending window that is flushed when it reaches ``max_batch`` requests
  or when ``max_delay_ms`` elapses since the window opened — whichever
  comes first;
* each flushed window is served through
  :meth:`~repro.fleet.AsyncFleet.serve_async` as a single batch, and the
  per-request answers are routed back to the awaiting callers' futures;
* identical in-flight misses are **single-flighted**: plain concurrent
  ``serve_async`` calls that miss the same operating point evaluate it
  once per overlapping batch, whereas the coalescer keys every request
  by ``(scenario cache key, gamers key, probability, method)`` plus the
  request's ``exact`` flag and attaches a request whose key is already
  being evaluated by an earlier window to that evaluation instead of
  resubmitting it — each point is evaluated exactly once per window.
  The ``exact`` flag is part of the flight key because an ``exact=True``
  request must never ride an in-flight value that a certified surface
  may have answered (within its bound, but not bit-identical);
* admission-control requests (``Request(kind="admit", ...)``) are
  single-flighted the same way, keyed on the full admit tuple
  ``(scenario, method, probability, budget, proposed point, exact)``:
  concurrent identical admits share one capacity inversion, and the
  duplicates count into ``deduped_inflight`` exactly like rtt dedups;
* a window that dies with :class:`~repro.errors.ExecutorBrokenError`
  (a worker-pool process was killed underneath it) is retried once on
  the freshly respawned pool, so transient worker faults cost latency,
  not errors.

Bookkeeping lands in the owning fleet's :class:`~repro.fleet.FleetStats`:
``coalesced_batches`` windows flushed, ``coalesced_requests`` requests
carried by them, ``deduped_inflight`` requests answered by attaching to
an in-flight evaluation.

Example::

    fleet = AsyncFleet(max_cache_entries=100_000)
    coalescer = RequestCoalescer(fleet, max_batch=64, max_delay_ms=2.0)
    answer = await coalescer.submit(Request("ftth", downlink_load=0.4))
    await coalescer.aclose()        # flush + wait for in-flight windows
"""

from __future__ import annotations

import asyncio
import sys
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..errors import ExecutorBrokenError, ReproError
from ..fleet import (
    AdmissionAnswer,
    Answer,
    AsyncFleet,
    Fleet,
    FleetStats,
    Request,
    ResolvedRequest,
)

__all__ = ["RequestCoalescer"]

#: One waiting caller: the resolved request plus its answer future.
_Waiter = Tuple[ResolvedRequest, "asyncio.Future[Answer]"]

#: The single-flight key: the fleet cache key plus the exact flag (an
#: exact request must not attach to a possibly-surface-served value).
_FlightKey = Tuple[str, float, float, str, bool]

#: The admit single-flight key: the full admit tuple, so only requests
#: asking the *same* capacity question share one inversion.
_AdmitKey = Tuple[
    str, str, float, float, Optional[float], Optional[float], bool
]


def _flight_key(resolved: ResolvedRequest) -> _FlightKey:
    return (*resolved.key, resolved.exact)


def _admit_key(request: Request, scenario_key: str, probability: float, method: str) -> _AdmitKey:
    return (
        scenario_key,
        method,
        probability,
        float(request.rtt_budget_ms),
        request.downlink_load,
        request.num_gamers,
        request.exact,
    )


def _mark_retrieved(future: "asyncio.Future[Any]") -> None:
    """Consume a future's exception so an unobserved one never warns."""
    if not future.cancelled():
        future.exception()


class RequestCoalescer:
    """Gathers concurrent requests into micro-batches for one fleet.

    Parameters
    ----------
    fleet:
        The :class:`~repro.fleet.AsyncFleet` (or plain
        :class:`~repro.fleet.Fleet`, which is wrapped) the windows are
        served on.
    max_batch:
        Flush the pending window once it holds this many requests.
    max_delay_ms:
        Flush the pending window this many milliseconds after its first
        request arrived, even if it is not full — the latency bound a
        lone request pays for the chance of being batched.
    executor:
        Optional :class:`~repro.executors.Executor` forwarded to
        ``serve_async`` (falls back to the async fleet's own).

    The coalescer must be used from a single event loop (the daemon's);
    it is not thread-safe, exactly like the underlying fleet.
    """

    def __init__(
        self,
        fleet: Union[Fleet, AsyncFleet, None] = None,
        *,
        max_batch: int = 64,
        max_delay_ms: float = 2.0,
        executor=None,
        **fleet_kwargs: Any,
    ) -> None:
        if fleet is not None and fleet_kwargs:
            raise ReproError(
                "pass either an existing fleet or Fleet keyword arguments, not both"
            )
        if fleet is None:
            fleet = AsyncFleet(**fleet_kwargs)
        elif isinstance(fleet, Fleet):
            fleet = AsyncFleet(fleet)
        if int(max_batch) < 1:
            raise ReproError("max_batch must be at least 1")
        if float(max_delay_ms) < 0.0:
            raise ReproError("max_delay_ms must be non-negative")
        self.async_fleet = fleet
        self.fleet: Fleet = fleet.fleet
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_ms) / 1e3
        self._executor = executor
        self._pending: List[_Waiter] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        #: flight key -> future resolving to the point's rtt_quantile_s;
        #: present exactly while a window evaluating that key is in flight.
        self._inflight: Dict[_FlightKey, "asyncio.Future[float]"] = {}
        #: admit tuple -> future resolving to its AdmissionAnswer;
        #: present exactly while that capacity inversion is in flight.
        self._admit_inflight: Dict[_AdmitKey, "asyncio.Future[AdmissionAnswer]"] = {}
        self._windows: "set[asyncio.Task]" = set()
        self._closed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestCoalescer(max_batch={self.max_batch}, "
            f"max_delay_ms={1e3 * self.max_delay_s:g}, "
            f"pending={len(self._pending)}, windows={len(self._windows)})"
        )

    @property
    def stats(self) -> FleetStats:
        """The owning fleet's statistics (coalescer counters included)."""
        return self.fleet.stats

    @property
    def pending(self) -> int:
        """Requests waiting in the not-yet-flushed window."""
        return len(self._pending)

    @property
    def inflight_windows(self) -> int:
        """Windows currently being served."""
        return len(self._windows)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(
        self, request: Union[Request, Mapping[str, Any]]
    ) -> Union[Answer, AdmissionAnswer]:
        """Queue one request and await its answer.

        Resolution and validation happen immediately — a malformed
        request raises here, in the caller, and never poisons the window
        the other callers are riding in.  The answer future resolves
        when the request's window (or the in-flight evaluation it was
        attached to) completes.  ``kind="admit"`` requests skip the
        batching window — an admission check is one inversion, not a
        stackable quantile — but identical concurrent admits are
        single-flighted and return one shared :class:`AdmissionAnswer`.
        """
        if self._closed:
            raise ReproError("the request coalescer is closed")
        if isinstance(request, Mapping):
            request = Request.from_dict(request)
        if request.kind == "admit":
            return await self._submit_admit(request)
        resolved = self.fleet.resolve_request(request)
        inflight = self._inflight.get(_flight_key(resolved))
        if inflight is not None:
            # Single-flight: the point is being evaluated right now by
            # an earlier window; ride that evaluation instead of
            # scheduling another one.
            self.stats.deduped_inflight += 1
            value = await asyncio.shield(inflight)
            return resolved.answer(value, cached=True)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Answer]" = loop.create_future()
        self._pending.append((resolved, future))
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_delay_s, self._flush)
        return await future

    async def _submit_admit(self, request: Request) -> AdmissionAnswer:
        """Answer one admit request, single-flighting identical ones.

        The request is resolved (and validated) synchronously so a bad
        admit raises in its own caller; the inversion itself runs on the
        loop's default thread pool — it is either an O(1) surface lookup
        plus ``brentq`` or a short exact bisection, never a stacked
        batch, so it does not ride the coalescing window.
        """
        item = self.fleet._resolve_admit(request)
        key = _admit_key(request, item.scenario_key, item.probability, item.method)
        inflight = self._admit_inflight.get(key)
        if inflight is not None:
            self.stats.deduped_inflight += 1
            return await asyncio.shield(inflight)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[AdmissionAnswer]" = loop.create_future()
        future.add_done_callback(_mark_retrieved)
        self._admit_inflight[key] = future
        try:
            answer = await loop.run_in_executor(
                None, self.fleet._answer_admit, item
            )
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
            raise
        else:
            if not future.done():
                future.set_result(answer)
            return answer
        finally:
            if self._admit_inflight.get(key) is future:
                del self._admit_inflight[key]

    async def submit_many(
        self, requests: Iterable[Union[Request, Mapping[str, Any]]]
    ) -> List[Union[Answer, AdmissionAnswer]]:
        """Submit several requests at once; answers come in input order.

        The requests land in the same pending window (flushing it every
        ``max_batch``), so a burst arriving together is stacked together.
        """
        return list(
            await asyncio.gather(*(self.submit(request) for request in requests))
        )

    # ------------------------------------------------------------------
    # Window lifecycle
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        """Flush the pending window into a serving task (synchronous)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        window, self._pending = self._pending, []
        stats = self.stats
        stats.coalesced_batches += 1
        stats.coalesced_requests += len(window)
        # Register this window's distinct keys as in flight *before* the
        # first await, so a submit racing with the flush attaches to the
        # evaluation instead of re-scheduling the point.
        loop = asyncio.get_event_loop()
        owned: Dict[_FlightKey, "asyncio.Future[float]"] = {}
        for resolved, _ in window:
            key = _flight_key(resolved)
            if key not in self._inflight:
                value_future: "asyncio.Future[float]" = loop.create_future()
                value_future.add_done_callback(_mark_retrieved)
                self._inflight[key] = value_future
                owned[key] = value_future
        task = loop.create_task(self._run_window(window, owned))
        self._windows.add(task)
        task.add_done_callback(self._windows.discard)

    def _count_executor_failure(
        self, exc: ExecutorBrokenError, *, retrying: bool
    ) -> None:
        """Fold one executor failure into the stats and log it.

        The counter is keyed by the failed worker host when the error
        carries one (a :class:`~repro.executors.RemoteExecutor` losing a
        daemon), or ``"local"`` for an in-process pool — the per-host
        breakdown an operator needs to tell "one flaky worker box" from
        "the pool keeps dying".
        """
        host = exc.host if exc.host is not None else "local"
        failures = self.stats.executor_failures
        failures[host] = failures.get(host, 0) + 1
        stranded = "?" if exc.plan_count is None else str(exc.plan_count)
        action = (
            "retrying the window once"
            if retrying
            else "failing the window (retry already spent)"
        )
        print(
            f"fps-ping serve: executor failure on {host} "
            f"({stranded} plan(s) stranded): {exc}; {action}",
            file=sys.stderr,
            flush=True,
        )

    async def _run_window(
        self,
        window: List[_Waiter],
        owned: Dict[_FlightKey, "asyncio.Future[float]"],
    ) -> None:
        requests = [resolved.request for resolved, _ in window]
        try:
            try:
                answers = await self.async_fleet.serve_async(
                    requests, executor=self._executor
                )
            except ExecutorBrokenError as exc:
                # The dead pool (or host set) was disposed by the
                # executor; one retry runs on the freshly recovered
                # executor (same floats).
                self._count_executor_failure(exc, retrying=True)
                answers = await self.async_fleet.serve_async(
                    requests, executor=self._executor
                )
        except BaseException as exc:
            if isinstance(exc, ExecutorBrokenError):
                self._count_executor_failure(exc, retrying=False)
            for _, future in window:
                if not future.done():
                    future.set_exception(exc)
            for value_future in owned.values():
                if not value_future.done():
                    value_future.set_exception(exc)
            if isinstance(exc, asyncio.CancelledError):
                raise
        else:
            for (resolved, future), answer in zip(window, answers):
                if not future.done():
                    future.set_result(answer)
                value_future = owned.get(_flight_key(resolved))
                if value_future is not None and not value_future.done():
                    value_future.set_result(answer.rtt_quantile_s)
        finally:
            for key, value_future in owned.items():
                if self._inflight.get(key) is value_future:
                    del self._inflight[key]

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Flush the pending window and wait for every in-flight window.

        Errors stay with their waiters (each ``submit`` caller sees its
        own window's exception); draining itself never raises.
        """
        self._flush()
        while self._windows:
            await asyncio.gather(*list(self._windows), return_exceptions=True)

    async def aclose(self) -> None:
        """Stop accepting submissions, then :meth:`drain` (idempotent)."""
        self._closed = True
        await self.drain()
