"""The serving daemon: an asyncio HTTP/1.1 front-end over the fleet.

``fps-ping serve`` answers the question an access-network operator asks
continuously — "what ping-time quantile does this pipe deliver right
now?" — as a long-running service instead of a one-shot batch call.
The daemon is stdlib-only (:func:`asyncio.start_server`, no HTTP
framework) and exposes:

``POST /v1/rtt``
    One request record (the :meth:`repro.fleet.Request.from_dict`
    JSONL fields) in, one answer object out.  Requests are routed
    through the :class:`~repro.serve.RequestCoalescer`, so concurrent
    connections arriving within the coalescing window are served as one
    stacked batch and identical in-flight misses are evaluated once.

``POST /v1/admit``
    Admission control: one JSON record with an ``rtt_budget_ms`` (plus
    the scenario fields, optionally a proposed ``load`` / ``gamers``
    operating point) in, one :class:`~repro.fleet.AdmissionAnswer`
    object out — the largest load / gamer count whose ping-time
    quantile still meets the budget, and whether the proposed point is
    admitted.  ``kind`` defaults to ``"admit"`` on this endpoint.  With
    certified surfaces attached, in-region admits are answered by an
    O(1) inversion with **zero plans executed**; identical concurrent
    admits are single-flighted by the coalescer.

``POST /v1/batch``
    A JSONL body (``Content-Length`` or chunked) streamed through the
    bounded-window pipeline of :mod:`repro.serve.streams`: at most a
    few windows in flight, answers streamed back incrementally in input
    order as a chunked ``application/x-ndjson`` response — the server
    never holds the whole stream in memory, and ``await drain()`` on
    every emitted answer back-pressures serving to the client's read
    rate.

``GET /healthz``
    ``{"status": "ok"}`` while serving, ``503 {"status": "draining"}``
    once shutdown has begun.

``GET /stats``
    The :class:`~repro.fleet.FleetStats` dictionary (including the
    coalescer counters and per-host execution counters), cache
    occupancy, per-daemon HTTP counters and — when a
    :class:`~repro.executors.RemoteExecutor` is wired in — the
    per-worker-host health view.

``POST /v1/plan`` (only with ``worker_mode=True``)
    The distributed execution tier's endpoint: one
    :mod:`repro.serve.wire` plan frame in, one result (or error) frame
    out, executed on the daemon's own executor.  This is how
    ``fps-ping serve --worker-mode`` daemons serve a front-end's
    :class:`~repro.executors.RemoteExecutor`; the frames carry pickles,
    so worker daemons belong strictly inside the serving cluster's
    trust boundary.

Malformed requests — invalid JSON, unknown fields, out-of-range
parameters, unstable operating points — return a structured JSON error
``{"error": ..., "type": ...}`` with the typed
:class:`~repro.errors.ReproError` message, never a connection drop or a
traceback.  On SIGTERM/SIGINT the daemon drains gracefully: it stops
accepting connections, finishes the requests and windows in flight,
persists the warm cache (atomically) and exits.

Example::

    daemon = ServingDaemon(port=8421, warm_cache="fleet-cache.json")
    asyncio.run(daemon.run())           # Ctrl-C / SIGTERM drains and exits

    # or, embedded in an existing loop / test:
    async with ServingDaemon(port=0) as daemon:
        ...  # daemon.port holds the bound port
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import time
from dataclasses import dataclass
from typing import Any, AsyncIterator, Dict, Mapping, Optional, Tuple, Union

from ..errors import ExecutorBrokenError, ReproError, WireFormatError
from ..executors.local import SerialExecutor
from ..fleet import Answer, AsyncFleet, Fleet, Request
from . import wire
from .coalescer import RequestCoalescer
from .streams import DEFAULT_MAX_INFLIGHT, stream_requests

__all__ = ["ServingDaemon", "DEFAULT_PORT"]

#: Default TCP port (no IANA meaning; "8421" ~ the paper's 4 access rates).
DEFAULT_PORT = 8421

#: Per-line / per-header buffer limit handed to the stream reader.
_LINE_LIMIT = 1 << 20

#: Upper bound on a non-streaming (``/v1/rtt``) body.
_MAX_BODY_BYTES = 1 << 20

#: Upper bound on a ``/v1/plan`` frame body (worker mode); one frame
#: header plus the wire protocol's own payload bound.
_MAX_PLAN_BODY_BYTES = wire.HEADER_SIZE + wire.MAX_FRAME_BYTES

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """An HTTP-level failure mapped to a structured JSON response."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(message)


@dataclass
class _Connection:
    """Book-keeping for one open client connection."""

    writer: asyncio.StreamWriter
    busy: bool = False


def _error_payload(exc: BaseException, status: int) -> Dict[str, Any]:
    message = exc.args[0] if exc.args else str(exc)
    return {"error": str(message), "type": type(exc).__name__, "status": status}


class ServingDaemon:
    """A long-running HTTP serving daemon over one coalescing fleet.

    Parameters
    ----------
    fleet:
        An existing :class:`~repro.fleet.Fleet` /
        :class:`~repro.fleet.AsyncFleet` to serve, or ``None`` to build
        one from ``fleet_kwargs`` (``max_cache_entries``,
        ``probability``, ``method``).
    host / port:
        Bind address; ``port=0`` binds an ephemeral port, readable from
        :attr:`port` after :meth:`start`.
    executor:
        Optional :class:`~repro.executors.Executor` the windows execute
        on (e.g. a :class:`~repro.executors.ParallelExecutor`); worker
        faults surface as one retried window, not an outage.
    max_batch / coalesce_ms:
        The coalescing window: flush on this many gathered requests or
        after this many milliseconds, whichever comes first.
    max_inflight:
        Bound on concurrently-served windows per ``/v1/batch`` stream.
    warm_cache:
        Optional cache file: loaded (if present) before the socket
        opens, written back atomically during shutdown.
    surfaces:
        Optional certified-surface document or directory
        (:func:`repro.surface.load_surfaces`), attached to the fleet
        before the socket opens so in-region requests are answered in
        O(1) with zero plans executed (``exact=true`` requests and
        out-of-region points still take the exact stacked path).
        Unlike ``warm_cache`` — which the daemon itself writes back —
        surfaces are operator-built artifacts (``fps-ping surface
        build``), so a missing or corrupt path fails startup with a
        typed :class:`~repro.errors.SurfaceFormatError` instead of
        silently serving without them.
    drain_timeout:
        Seconds to wait for in-flight connections during shutdown
        before force-closing them.
    worker_mode:
        Expose ``POST /v1/plan``: the endpoint of the distributed
        execution tier that accepts one :mod:`repro.serve.wire` plan
        frame and answers with a result (or error) frame, executing the
        plan on this daemon's executor (a private
        :class:`~repro.executors.SerialExecutor` when none is given).
        Off by default — plan frames carry pickles, so the endpoint
        must only exist on workers inside the serving cluster's trust
        boundary, never on a public front-end.
    """

    def __init__(
        self,
        fleet: Union[Fleet, AsyncFleet, None] = None,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        executor=None,
        max_batch: int = 64,
        coalesce_ms: float = 2.0,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        warm_cache: Union[str, os.PathLike, None] = None,
        surfaces: Union[str, os.PathLike, None] = None,
        drain_timeout: float = 10.0,
        worker_mode: bool = False,
        **fleet_kwargs: Any,
    ) -> None:
        if fleet is not None and fleet_kwargs:
            raise ReproError(
                "pass either an existing fleet or Fleet keyword arguments, not both"
            )
        if fleet is None:
            fleet = AsyncFleet(**fleet_kwargs)
        elif isinstance(fleet, Fleet):
            fleet = AsyncFleet(fleet)
        self.async_fleet = fleet
        self.fleet: Fleet = fleet.fleet
        self.host = host
        self.port = int(port)
        self.max_inflight = int(max_inflight)
        self.warm_cache = os.fspath(warm_cache) if warm_cache is not None else None
        self.surfaces = os.fspath(surfaces) if surfaces is not None else None
        self.drain_timeout = float(drain_timeout)
        self.coalescer = RequestCoalescer(
            fleet, max_batch=max_batch, max_delay_ms=coalesce_ms, executor=executor
        )
        self.executor = executor
        self.worker_mode = bool(worker_mode)
        self._owns_plan_executor = self.worker_mode and executor is None
        self._plan_executor = (
            SerialExecutor() if self._owns_plan_executor else executor
        )
        self.warm_loaded = 0
        self.surfaces_loaded = 0
        self.connections_accepted = 0
        self.http_requests = 0
        self.http_errors = 0
        self.plans_served = 0
        self.admits_served = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Dict[asyncio.Task, _Connection] = {}
        self._draining = False
        self._started_at: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "draining" if self._draining else (
            "serving" if self._server else "stopped"
        )
        return f"ServingDaemon({self.host}:{self.port}, {state})"

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Warm the cache and open the listening socket."""
        if self._server is not None:
            raise ReproError("the daemon is already started")
        if self.warm_cache is not None and os.path.exists(self.warm_cache):
            self.warm_loaded = self.fleet.warm_start(self.warm_cache)
        if self.surfaces is not None:
            # Deliberately no existence check (contrast warm_cache): a
            # typo'd --surfaces must fail startup, not silently serve
            # every request down the expensive exact path.
            self.surfaces_loaded = self.fleet.attach_surfaces(self.surfaces)
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port, limit=_LINE_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work, persist.

        Idle keep-alive connections are closed immediately; connections
        with a request in flight get ``drain_timeout`` seconds to finish
        (their coalescing windows are flushed and awaited), then the
        warm cache is written back atomically.  Idempotent.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for connection in list(self._connections.values()):
            if not connection.busy:
                connection.writer.close()
        if self._connections:
            done, pending = await asyncio.wait(
                list(self._connections), timeout=self.drain_timeout
            )
            for task in pending:
                connection = self._connections.get(task)
                if connection is not None:
                    connection.writer.close()
            if pending:
                await asyncio.wait(list(pending), timeout=1.0)
        await self.coalescer.aclose()
        if self._owns_plan_executor and self._plan_executor is not None:
            self._plan_executor.close()
        if self.warm_cache is not None:
            self.fleet.save_cache(self.warm_cache)

    async def run(
        self,
        *,
        install_signal_handlers: bool = True,
        ready: Optional[asyncio.Event] = None,
    ) -> None:
        """Serve until SIGTERM/SIGINT, then drain and return.

        ``ready`` (if given) is set once the socket is bound — test and
        embedding hooks.  With ``install_signal_handlers=False`` the
        caller stops the daemon by cancelling this coroutine; the drain
        still runs.
        """
        await self.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed = []
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, stop.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    continue
                installed.append(signum)
        mode = " [worker mode]" if self.worker_mode else ""
        surfaces = (
            f", surfaces: {self.surfaces_loaded}" if self.surfaces is not None else ""
        )
        print(
            f"fps-ping serve: listening on http://{self.host}:{self.port} "
            f"(pid {os.getpid()}, warm entries: {self.warm_loaded}{surfaces}){mode}",
            file=sys.stderr,
            flush=True,
        )
        if ready is not None:
            ready.set()
        try:
            await stop.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.shutdown()

    async def __aenter__(self) -> "ServingDaemon":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        connection = _Connection(writer=writer)
        assert task is not None
        self._connections[task] = connection
        self.connections_accepted += 1
        try:
            while not self._draining:
                head = await self._read_head(reader)
                if head is None:
                    break
                method, path, version, headers = head
                connection.busy = True
                self.http_requests += 1
                try:
                    keep_alive = await self._dispatch(
                        method, path, version, headers, reader, writer
                    )
                finally:
                    connection.busy = False
                await writer.drain()
                if not keep_alive or self._draining:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
        ):
            pass
        except _HttpError as exc:
            # Unframeable request head: answer if the socket still
            # writes, then close (the stream cannot be trusted further).
            self.http_errors += 1
            try:
                self._write_json(
                    writer, exc.status, _error_payload(exc, exc.status),
                    keep_alive=False,
                )
                await writer.drain()
            except ConnectionError:  # pragma: no cover - peer gone
                pass
        finally:
            self._connections.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):  # pragma: no cover
                pass

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, str, Dict[str, str]]]:
        """Read one request line + headers; ``None`` on clean EOF."""
        try:
            request_line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as exc:
            raise _HttpError(400, "request line too long") from exc
        if not request_line.strip():
            if request_line:
                # Tolerate a stray blank line between pipelined requests.
                return await self._read_head(reader)
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].upper().startswith("HTTP/"):
            raise _HttpError(400, "malformed HTTP request line")
        method, target, version = parts[0].upper(), parts[1], parts[2]
        headers: Dict[str, str] = {}
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError) as exc:
                raise _HttpError(400, "header line too long") from exc
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= 100:
                raise _HttpError(400, "too many headers")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line {name.strip()!r}")
            headers[name.strip().lower()] = value.strip()
        return method, target, version, headers

    # ------------------------------------------------------------------
    # Body framing
    # ------------------------------------------------------------------
    @staticmethod
    async def _iter_body(
        reader: asyncio.StreamReader, headers: Mapping[str, str]
    ) -> AsyncIterator[bytes]:
        """Yield the request body incrementally (Content-Length or chunked)."""
        if "chunked" in headers.get("transfer-encoding", "").lower():
            while True:
                size_line = await reader.readline()
                try:
                    size = int(size_line.split(b";")[0].strip(), 16)
                except ValueError as exc:
                    raise _HttpError(400, "malformed chunk size") from exc
                if size == 0:
                    while True:  # discard trailers
                        line = await reader.readline()
                        if line in (b"\r\n", b"\n", b""):
                            break
                    return
                yield await reader.readexactly(size)
                await reader.readexactly(2)  # the chunk's trailing CRLF
            return
        length_header = headers.get("content-length")
        if length_header is None:
            raise _HttpError(411, "a request body needs Content-Length or chunked encoding")
        try:
            remaining = int(length_header)
        except ValueError as exc:
            raise _HttpError(400, "malformed Content-Length") from exc
        while remaining > 0:
            chunk = await reader.read(min(65536, remaining))
            if not chunk:
                raise asyncio.IncompleteReadError(b"", remaining)
            remaining -= len(chunk)
            yield chunk

    async def _read_body(
        self,
        reader: asyncio.StreamReader,
        headers: Mapping[str, str],
        *,
        limit: int = _MAX_BODY_BYTES,
    ) -> bytes:
        """Read a small (``/v1/rtt``, ``/v1/plan``) body fully, capped."""
        pieces = []
        total = 0
        async for chunk in self._iter_body(reader, headers):
            total += len(chunk)
            if total > limit:
                raise _HttpError(413, "request body too large")
            pieces.append(chunk)
        return b"".join(pieces)

    @staticmethod
    async def _iter_body_lines(
        chunks: AsyncIterator[bytes],
    ) -> AsyncIterator[str]:
        """Split a streamed body into text lines without buffering it all."""
        buffer = b""
        async for chunk in chunks:
            buffer += chunk
            while True:
                index = buffer.find(b"\n")
                if index < 0:
                    break
                yield buffer[:index].decode("utf-8", errors="replace")
                buffer = buffer[index + 1 :]
        if buffer.strip():
            yield buffer.decode("utf-8", errors="replace")

    # ------------------------------------------------------------------
    # Response writing
    # ------------------------------------------------------------------
    @staticmethod
    def _write_head(
        writer: asyncio.StreamWriter,
        status: int,
        *,
        content_type: str = "application/json",
        content_length: Optional[int] = None,
        chunked: bool = False,
        keep_alive: bool = True,
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
        ]
        if chunked:
            lines.append("Transfer-Encoding: chunked")
        elif content_length is not None:
            lines.append(f"Content-Length: {content_length}")
        lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))

    def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Mapping[str, Any],
        *,
        keep_alive: bool = True,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._write_head(
            writer, status, content_length=len(body), keep_alive=keep_alive
        )
        writer.write(body)

    @staticmethod
    def _write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")

    def _write_frame(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        frame: bytes,
        *,
        keep_alive: bool = True,
    ) -> None:
        """Write a wire-protocol frame as an octet-stream response body."""
        self._write_head(
            writer,
            status,
            content_type="application/octet-stream",
            content_length=len(frame),
            keep_alive=keep_alive,
        )
        writer.write(frame)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        method: str,
        target: str,
        version: str,
        headers: Mapping[str, str],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Serve one request; returns whether to keep the connection."""
        path = target.split("?", 1)[0]
        keep_alive = headers.get("connection", "").lower() != "close" and (
            version.upper() != "HTTP/1.0"
            or headers.get("connection", "").lower() == "keep-alive"
        )
        routes = {
            "/healthz": ("GET", self._handle_healthz),
            "/stats": ("GET", self._handle_stats),
            "/v1/rtt": ("POST", self._handle_rtt),
            "/v1/admit": ("POST", self._handle_admit),
            "/v1/batch": ("POST", self._handle_batch),
        }
        if self.worker_mode:
            routes["/v1/plan"] = ("POST", self._handle_plan)
        route = routes.get(path)
        try:
            if route is None:
                raise _HttpError(404, f"no such endpoint: {path}")
            expected_method, handler = route
            if method != expected_method:
                raise _HttpError(
                    405, f"{path} expects {expected_method}, not {method}"
                )
            return await handler(headers, reader, writer, keep_alive)
        except _HttpError as exc:
            self.http_errors += 1
            # The body (if any) was not necessarily consumed: close.
            self._write_json(
                writer, exc.status, _error_payload(exc, exc.status), keep_alive=False
            )
            return False
        except ExecutorBrokenError as exc:
            # The worker pool died twice in a row (the coalescer already
            # retried once on a fresh pool): a server-side fault.
            self.http_errors += 1
            self._write_json(writer, 500, _error_payload(exc, 500), keep_alive=False)
            return False
        except ReproError as exc:
            self.http_errors += 1
            self._write_json(
                writer, 400, _error_payload(exc, 400), keep_alive=keep_alive
            )
            return keep_alive
        except (ConnectionError, asyncio.IncompleteReadError):
            raise
        except Exception as exc:  # noqa: BLE001 - last-resort 500, never a drop
            self.http_errors += 1
            print(
                f"fps-ping serve: internal error serving {path}: {exc!r}",
                file=sys.stderr,
                flush=True,
            )
            self._write_json(
                writer, 500, _error_payload(exc, 500), keep_alive=False
            )
            return False

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _handle_healthz(self, headers, reader, writer, keep_alive) -> bool:
        status = 503 if self._draining else 200
        payload = {"status": "draining" if self._draining else "ok"}
        self._write_json(writer, status, payload, keep_alive=keep_alive)
        return keep_alive

    async def _handle_stats(self, headers, reader, writer, keep_alive) -> bool:
        uptime = (
            time.monotonic() - self._started_at if self._started_at is not None else 0.0
        )
        payload = {
            "fleet": self.fleet.stats.as_dict(),
            "cache_entries": self.fleet.cache_size(),
            "server": {
                "host": self.host,
                "port": self.port,
                "draining": self._draining,
                "uptime_s": round(uptime, 3),
                "connections_open": len(self._connections),
                "connections_accepted": self.connections_accepted,
                "http_requests": self.http_requests,
                "http_errors": self.http_errors,
                "pending_requests": self.coalescer.pending,
                "inflight_windows": self.coalescer.inflight_windows,
                "warm_loaded_entries": self.warm_loaded,
                "surfaces_loaded": self.surfaces_loaded,
                "worker_mode": self.worker_mode,
                "plans_served": self.plans_served,
                "admits_served": self.admits_served,
            },
        }
        # A RemoteExecutor in front of this fleet knows per-host health
        # and round-trip counters the fleet's folded stats cannot: the
        # operator's failover view.
        executor = self.executor
        if executor is not None and hasattr(executor, "host_stats"):
            payload["worker_hosts"] = executor.host_stats()
        self._write_json(writer, 200, payload, keep_alive=keep_alive)
        return keep_alive

    async def _handle_plan(self, headers, reader, writer, keep_alive) -> bool:
        """Execute one framed :class:`~repro.core.rtt.EvalPlan` (worker mode).

        The response is always a wire-protocol frame: a result frame
        for a completed plan, an error frame otherwise — ``400`` for a
        frame that does not decode, ``200`` for a typed error the plan
        itself raised (the front-end re-raises it in the caller), and
        ``500`` for anything unexpected.  Either way the connection
        stays usable: a worker serves many plans per keep-alive
        connection.
        """
        body = await self._read_body(reader, headers, limit=_MAX_PLAN_BODY_BYTES)
        try:
            plan = wire.decode_plan(body)
        except WireFormatError as exc:
            self.http_errors += 1
            self._write_frame(
                writer, 400, wire.encode_error(exc), keep_alive=keep_alive
            )
            return keep_alive
        try:
            results = await self._plan_executor.run_async([plan])
        except ReproError as exc:
            # A typed error the plan raised (unstable point, bad
            # parameters, a broken worker pool): the front-end's
            # decode_result re-raises it, exactly like in-process
            # execution would have.
            self._write_frame(
                writer, 200, wire.encode_error(exc), keep_alive=keep_alive
            )
            return keep_alive
        except Exception as exc:  # noqa: BLE001 - last-resort error frame
            self.http_errors += 1
            print(
                f"fps-ping serve: internal error executing a plan: {exc!r}",
                file=sys.stderr,
                flush=True,
            )
            self._write_frame(
                writer, 500, wire.encode_error(exc), keep_alive=keep_alive
            )
            return keep_alive
        self.plans_served += 1
        self._write_frame(
            writer, 200, wire.encode_result(results[0]), keep_alive=keep_alive
        )
        return keep_alive

    async def _handle_rtt(self, headers, reader, writer, keep_alive) -> bool:
        body = await self._read_body(reader, headers)
        try:
            record = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ReproError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise ReproError("the request body must be a JSON object")
        answer = await self.coalescer.submit(Request.from_dict(record))
        self._write_json(writer, 200, answer.to_dict(), keep_alive=keep_alive)
        return keep_alive

    async def _handle_admit(self, headers, reader, writer, keep_alive) -> bool:
        """Answer one admission-control request (``kind`` defaults to admit)."""
        body = await self._read_body(reader, headers)
        try:
            record = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ReproError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise ReproError("the request body must be a JSON object")
        record.setdefault("kind", "admit")
        answer = await self.coalescer.submit(Request.from_dict(record))
        self.admits_served += 1
        self._write_json(writer, 200, answer.to_dict(), keep_alive=keep_alive)
        return keep_alive

    async def _handle_batch(self, headers, reader, writer, keep_alive) -> bool:
        """Stream a JSONL body through bounded windows, answers chunked back."""
        # Validate the body framing before committing to a 200 chunked
        # response head — framing errors must still produce a clean 4xx.
        if "chunked" not in headers.get("transfer-encoding", "").lower():
            length_header = headers.get("content-length")
            if length_header is None:
                raise _HttpError(
                    411, "a batch body needs Content-Length or chunked encoding"
                )
            try:
                int(length_header)
            except ValueError as exc:
                raise _HttpError(400, "malformed Content-Length") from exc
        self._write_head(
            writer, 200, content_type="application/x-ndjson", chunked=True,
            keep_alive=keep_alive,
        )

        async def emit(answer: Answer) -> None:
            line = (json.dumps(answer.to_dict(), sort_keys=True) + "\n").encode("utf-8")
            self._write_chunk(writer, line)
            # Back-pressure: do not pull more windows than the client reads.
            await writer.drain()

        lines = self._iter_body_lines(self._iter_body(reader, headers))
        try:
            await stream_requests(
                lines,
                self.coalescer.submit_many,
                emit,
                max_batch=self.coalescer.max_batch,
                max_inflight=self.max_inflight,
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            raise
        except Exception as exc:  # noqa: BLE001 - head already sent
            # The response is already streaming: report the failure as a
            # final in-band error line, then close (the body may not
            # have been fully consumed, so the framing is unusable).
            self.http_errors += 1
            status = 400 if isinstance(exc, (ReproError, _HttpError)) else 500
            if status == 500:
                print(
                    f"fps-ping serve: internal error serving /v1/batch: {exc!r}",
                    file=sys.stderr,
                    flush=True,
                )
            message = (json.dumps(_error_payload(exc, status)) + "\n").encode("utf-8")
            self._write_chunk(writer, message)
            keep_alive = False
        self._write_chunk(writer, b"")  # terminating 0-length chunk
        return keep_alive
