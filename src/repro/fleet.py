"""Request-level serving of RTT lookups across many scenarios.

:class:`~repro.engine.Engine` answers questions about *one* scenario;
the dimensioning question of the paper, asked at production scale, is a
**stream of requests** spanning many scenarios at once ("the 99.999%
ping time of preset X at load y", millions of times, across the whole
preset catalogue).  :class:`Fleet` is the entry point for that workload:

* requests are plain :class:`Request` values (or JSONL dictionaries, see
  the CLI's ``fleet`` subcommand) naming a scenario — preset name,
  ``Scenario`` object, parameter mapping or JSON file path — plus an
  operating point (downlink load or gamer count) and optional
  per-request quantile level and method;
* :meth:`Fleet.serve` answers a whole batch in one pass: requests are
  sharded by :meth:`Scenario.cache_key` onto internally-managed engines,
  answered from a **shared bounded LRU cache** when possible, and the
  misses of every (probability, method) group are evaluated together
  through the stacked cross-model inverter
  (:class:`~repro.core.rtt.QueueingMgfStack` driving
  :func:`~repro.core.inversion.quantiles_from_mgfs`), so a heterogeneous
  multi-scenario batch costs one joint array evaluation per search
  round instead of one per model — with floats identical to per-point
  :meth:`Engine.rtt_quantile` answers;
* serving is split into three explicit phases — **plan** (compile the
  batch's cache misses into picklable, self-contained
  :class:`~repro.core.rtt.EvalPlan` units, one chunk per
  factor-signature group), **execute** (run the plans on any
  :class:`~repro.executors.Executor` — in-process by default, or a
  :class:`~repro.executors.ParallelExecutor` process pool via
  ``serve(..., executor=...)``) and **assemble** (merge the partial
  results back through the shared cache, folding each plan's own
  counters into :class:`FleetStats`) — with floats bit-identical for
  every executor and worker count;
* the cache has a configurable entry budget; insertions beyond it evict
  the least-recently-used answers, and every cache event is surfaced in
  :class:`FleetStats`;
* :meth:`Fleet.save_cache` / :meth:`Fleet.warm_start` persist and
  restore the answer cache as JSON keyed by ``Scenario.cache_key()``,
  so repeated CLI/CI runs start warm (floats round-trip exactly);
  corrupted or mismatched cache files raise the typed
  :class:`~repro.errors.CacheFormatError` naming the offending key;
* :class:`AsyncFleet` wraps the same pipeline for long-running asyncio
  services: ``await fleet.serve_async(...)`` keeps the event loop free
  while the plans execute on a thread or process pool.

Example::

    from repro import Fleet, ParallelExecutor, Request

    fleet = Fleet(max_cache_entries=10_000)
    answers = fleet.serve([
        Request("paper-dsl", downlink_load=0.40),
        Request("ftth", downlink_load=0.40),
        Request("lte", num_gamers=120.0, probability=0.9999),
    ])
    answers[0].rtt_quantile_ms
    with ParallelExecutor(workers=4) as executor:   # same floats, N cores
        fleet.serve(more_requests, executor=executor)
    fleet.stats.as_dict()
"""

from __future__ import annotations

import asyncio
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from .core.dimensioning import AdmissionResult
from .core.rtt import (
    DEFAULT_QUANTILE,
    QUANTILE_METHODS,
    CostModel,
    EvalPlan,
    PlanResult,
    compile_eval_plans,
    execute_plan,
    plan_signature,
)
from .engine import Engine
from .errors import CacheFormatError, ParameterError, ReproError, StabilityError
from .persist import atomic_write_text
from .scenarios.base import Scenario
from .scenarios.mix import MixScenario
from .scenarios.registry import scenario_from_spec
from .surface import QuantileSurface, SurfaceIndex, load_surfaces

__all__ = [
    "Request",
    "ResolvedRequest",
    "Answer",
    "AdmissionAnswer",
    "FleetStats",
    "Fleet",
    "AsyncFleet",
]

#: Any of: a preset name / JSON file path, a (mix) scenario, or a
#: parameter mapping (mappings tagged ``"type": "mix"`` resolve to
#: :class:`~repro.scenarios.mix.MixScenario`).
ScenarioSpec = Union[str, Scenario, MixScenario, Mapping[str, Any]]

#: Accepted spellings of the Request JSONL fields (CLI request files).
_REQUEST_KEYS = {
    "scenario": "scenario",
    "load": "downlink_load",
    "downlink_load": "downlink_load",
    "gamers": "num_gamers",
    "num_gamers": "num_gamers",
    "probability": "probability",
    "method": "method",
    "exact": "exact",
    "tag": "tag",
    "kind": "kind",
    "rtt_budget_ms": "rtt_budget_ms",
    "budget_ms": "rtt_budget_ms",
}

#: Request kinds the serving layers understand.
_REQUEST_KINDS = ("rtt", "admit")


@dataclass(frozen=True)
class Request:
    """One serving request: a scenario plus what is asked of it.

    The default ``kind="rtt"`` is an RTT-quantile lookup at an
    operating point: exactly one of ``downlink_load`` (on the
    bottleneck link, in (0, 1)) and ``num_gamers`` (>= 1) must be
    given.  ``probability`` and ``method`` default to the owning
    :class:`Fleet`'s values; ``tag`` is an opaque caller identifier
    echoed in the :class:`Answer`.

    ``kind="admit"`` is the admission-control question (Section 4
    served online): it requires ``rtt_budget_ms`` (> 0) and takes *at
    most* one of ``downlink_load`` / ``num_gamers`` as the proposed
    operating point — omitted, the request asks only for the capacity
    under the budget.  Answered with an :class:`AdmissionAnswer`.

    ``exact=True`` demands the exact stacked-path floats: the request
    bypasses any attached certified surface (an ``"rtt"`` request still
    uses the answer cache, which only ever holds exact values).
    """

    scenario: ScenarioSpec
    downlink_load: Optional[float] = None
    num_gamers: Optional[float] = None
    probability: Optional[float] = None
    method: Optional[str] = None
    exact: bool = False
    tag: Optional[str] = None
    kind: str = "rtt"
    rtt_budget_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in _REQUEST_KINDS:
            raise ParameterError(
                f"kind must be one of {_REQUEST_KINDS}; got {self.kind!r}"
            )
        if self.kind == "admit":
            if self.rtt_budget_ms is None:
                raise ParameterError("an admit request needs rtt_budget_ms=")
            if not float(self.rtt_budget_ms) > 0.0:
                raise ParameterError("rtt_budget_ms must be positive")
            if self.downlink_load is not None and self.num_gamers is not None:
                raise ParameterError(
                    "an admit request takes at most one of downlink_load= "
                    "or num_gamers= (the proposed operating point)"
                )
        else:
            if self.rtt_budget_ms is not None:
                raise ParameterError('rtt_budget_ms= requires kind="admit"')
            if (self.downlink_load is None) == (self.num_gamers is None):
                raise ParameterError(
                    "a Request needs exactly one of downlink_load= or num_gamers="
                )
        if not isinstance(self.exact, bool):
            raise ParameterError("exact must be a boolean")
        if self.downlink_load is not None and not 0.0 < float(self.downlink_load) < 1.0:
            raise ParameterError("downlink_load must lie in (0, 1)")
        if self.num_gamers is not None and float(self.num_gamers) < 1.0:
            raise ParameterError("num_gamers must be at least 1")
        if self.probability is not None and not 0.0 < float(self.probability) < 1.0:
            raise ParameterError("probability must lie in (0, 1)")
        if self.method is not None and self.method not in QUANTILE_METHODS:
            raise ParameterError(
                f"method must be one of {QUANTILE_METHODS}; got {self.method!r}"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Request":
        """Build a request from a JSONL record.

        ``load``/``gamers`` are accepted as short spellings of
        ``downlink_load``/``num_gamers`` (and ``budget_ms`` of
        ``rtt_budget_ms``); unknown keys raise so typos in request
        files do not pass silently.
        """
        unknown = sorted(set(data) - set(_REQUEST_KEYS))
        if unknown:
            raise ParameterError(
                f"unknown request field(s) {unknown}; known: {sorted(set(_REQUEST_KEYS))}"
            )
        if "scenario" not in data:
            raise ParameterError("a request record needs a 'scenario' field")
        kwargs: Dict[str, Any] = {}
        for key, value in data.items():
            name = _REQUEST_KEYS[key]
            if name in kwargs:
                raise ParameterError(
                    f"request field {key!r} conflicts with another spelling of {name!r}"
                )
            kwargs[name] = value
        for name in ("downlink_load", "num_gamers", "probability", "rtt_budget_ms"):
            if kwargs.get(name) is not None:
                try:
                    kwargs[name] = float(kwargs[name])
                except (TypeError, ValueError) as exc:
                    raise ParameterError(
                        f"request field {name!r} must be a number: {exc}"
                    ) from exc
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """JSONL-ready dictionary view (omits unset fields)."""
        scenario = self.scenario
        if isinstance(scenario, (Scenario, MixScenario)):
            scenario = scenario.to_dict()
        out: Dict[str, Any] = {"scenario": scenario}
        if self.kind != "rtt":
            out["kind"] = self.kind
        for name in (
            "downlink_load",
            "num_gamers",
            "probability",
            "method",
            "tag",
            "rtt_budget_ms",
        ):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.exact:
            out["exact"] = True
        return out


@dataclass(frozen=True)
class Answer:
    """The served result of one :class:`Request` (all delays in seconds)."""

    scenario_key: str
    num_gamers: float
    downlink_load: float
    uplink_load: float
    probability: float
    method: str
    rtt_quantile_s: float
    cached: bool
    tag: Optional[str] = None

    @property
    def rtt_quantile_ms(self) -> float:
        return 1e3 * self.rtt_quantile_s

    def to_dict(self) -> Dict[str, Any]:
        """JSONL-ready dictionary view."""
        out: Dict[str, Any] = {
            "scenario_key": self.scenario_key,
            "num_gamers": self.num_gamers,
            "downlink_load": self.downlink_load,
            "uplink_load": self.uplink_load,
            "probability": self.probability,
            "method": self.method,
            "rtt_quantile_s": self.rtt_quantile_s,
            "rtt_quantile_ms": self.rtt_quantile_ms,
            "cached": self.cached,
        }
        if self.tag is not None:
            out["tag"] = self.tag
        return out


@dataclass(frozen=True)
class AdmissionAnswer:
    """The served result of one ``kind="admit"`` :class:`Request`.

    Wraps the :class:`~repro.core.dimensioning.AdmissionResult` verdict
    with the serving context (scenario key, method, echoed ``tag``) so
    it slots into the same JSONL answer streams as :class:`Answer`.
    """

    scenario_key: str
    method: str
    result: AdmissionResult
    tag: Optional[str] = None

    @property
    def admitted(self) -> bool:
        return self.result.admitted

    @property
    def max_load(self) -> float:
        return self.result.max_load

    @property
    def max_gamers(self) -> int:
        return self.result.max_gamers

    @property
    def source(self) -> str:
        return self.result.source

    @property
    def probability(self) -> float:
        return self.result.probability

    def to_dict(self) -> Dict[str, Any]:
        """JSONL-ready dictionary view."""
        out: Dict[str, Any] = {
            "kind": "admit",
            "scenario_key": self.scenario_key,
            "method": self.method,
        }
        out.update(self.result.to_dict())
        if self.tag is not None:
            out["tag"] = self.tag
        return out


@dataclass
class FleetStats:
    """Cache and evaluation bookkeeping of one :class:`Fleet`.

    ``evaluations`` and ``stacked_mgf_calls`` are folded from the
    executed plans' own :class:`~repro.core.rtt.PlanResult` counters, so
    they are exact whether the plans ran in-process or on a process
    pool; ``plans_executed`` / ``remote_plans`` tell the two apart.

    The ``coalesced_*`` / ``deduped_inflight`` counters are incremented
    by a :class:`~repro.serve.RequestCoalescer` gathering concurrent
    callers into micro-batches in front of this fleet:
    ``coalesced_batches`` windows were flushed carrying
    ``coalesced_requests`` requests in total, and ``deduped_inflight``
    requests were answered by attaching to an identical operating point
    already being evaluated by an earlier window (single-flight) instead
    of evaluating it again.

    ``hosts`` breaks the executed plans down by worker host when a
    :class:`~repro.executors.RemoteExecutor` served them (each
    :class:`~repro.core.rtt.PlanResult` comes back stamped with the
    host that ran it, its wire round-trip time and how many times the
    plan was redispatched after a host failure); ``executor_failures``
    counts :class:`~repro.errors.ExecutorBrokenError` occurrences per
    host (``"local"`` for an in-process pool), incremented by the
    request coalescer's retry path.
    """

    requests: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Certified-surface triage (see :mod:`repro.surface`): requests
    #: answered by an attached surface in O(1), requests whose
    #: (scenario, method) had no surface at all, and requests a surface
    #: existed for but declined (exact floats requested, operating
    #: point outside the certified region, or bound too loose).
    surface_hits: int = 0
    surface_misses: int = 0
    surface_fallbacks: int = 0
    evictions: int = 0
    evaluations: int = 0
    stacked_mgf_calls: int = 0
    #: Evaluation plans executed on behalf of this fleet, and how many
    #: of them ran outside the serving process (a worker pool).
    plans_executed: int = 0
    remote_plans: int = 0
    engines_built: int = 0
    engines_evicted: int = 0
    warm_loaded: int = 0
    #: Request-coalescing counters (see :class:`repro.serve.RequestCoalescer`).
    coalesced_batches: int = 0
    coalesced_requests: int = 0
    deduped_inflight: int = 0
    #: host -> {"plans", "redispatches", "wire_s"} for remotely-served
    #: plans (folded from PlanResult transport metadata).
    hosts: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: host ("local" for in-process pools) -> ExecutorBrokenError count.
    executor_failures: Dict[str, int] = field(default_factory=dict)
    #: Observed execution cost per factor-signature group:
    #: :func:`~repro.core.rtt.plan_signature` label -> {"plans", "models",
    #: "exec_s"} folded from each executed plan's ``exec_s`` stamp.  The
    #: measured grounding for cost-model plan chunking: exec_s / models
    #: is the observed per-model cost of that signature.
    plan_costs: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Admission-control requests served, split by which tier inverted
    #: the load→quantile relation: ``admit_surface`` through a certified
    #: surface's O(1) lookup (zero evaluation plans executed),
    #: ``admit_exact`` through the exact stacked path.
    admits: int = 0
    admit_surface: int = 0
    admit_exact: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "surface_hits": self.surface_hits,
            "surface_misses": self.surface_misses,
            "surface_fallbacks": self.surface_fallbacks,
            "evictions": self.evictions,
            "evaluations": self.evaluations,
            "stacked_mgf_calls": self.stacked_mgf_calls,
            "plans_executed": self.plans_executed,
            "remote_plans": self.remote_plans,
            "engines_built": self.engines_built,
            "engines_evicted": self.engines_evicted,
            "warm_loaded": self.warm_loaded,
            "coalesced_batches": self.coalesced_batches,
            "coalesced_requests": self.coalesced_requests,
            "deduped_inflight": self.deduped_inflight,
            "hosts": {host: dict(entry) for host, entry in self.hosts.items()},
            "executor_failures": dict(self.executor_failures),
            "plan_costs": {
                signature: dict(entry)
                for signature, entry in self.plan_costs.items()
            },
            "admits": self.admits,
            "admit_surface": self.admit_surface,
            "admit_exact": self.admit_exact,
        }

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered from the cache (0 when idle)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


#: A fully-resolved cache key: (scenario key, gamers key, probability, method).
_CacheKey = Tuple[str, float, float, str]


@dataclass(frozen=True)
class ResolvedRequest:
    """A :class:`Request` resolved against its scenario and fleet defaults.

    Produced by :meth:`Fleet.resolve_request` — the validation step of
    the plan phase, shared with the request coalescer
    (:class:`repro.serve.RequestCoalescer`) so both derive the exact
    same cache key ``(scenario key, gamers key, probability, method)``
    for a request.  Resolution never mutates fleet state.
    """

    request: Request
    scenario: Scenario
    num_gamers: float
    downlink_load: float
    uplink_load: float
    probability: float
    method: str
    key: _CacheKey
    #: Exact stacked-path floats demanded (bypasses certified surfaces).
    exact: bool = False

    def answer(self, rtt_quantile_s: float, *, cached: bool) -> Answer:
        """Materialize the :class:`Answer` for a served quantile value."""
        return Answer(
            scenario_key=self.key[0],
            num_gamers=self.num_gamers,
            downlink_load=self.downlink_load,
            uplink_load=self.uplink_load,
            probability=self.probability,
            method=self.method,
            rtt_quantile_s=rtt_quantile_s,
            cached=cached,
            tag=self.request.tag,
        )


#: Magic header of the persisted cache files.
_CACHE_FORMAT = "repro-fleet-cache"
_CACHE_VERSION = 1


@dataclass
class _BatchPlan:
    """The planned form of one request batch (phase-1 output).

    ``values`` arrives pre-filled with the cache hits; ``eval_plans``
    holds the compiled work units for the distinct misses and
    ``plan_keys`` maps each plan's positions back to the cache keys the
    assembly phase stores the results under.
    """

    resolved: List[ResolvedRequest]
    cached_flags: List[bool]
    values: Dict[_CacheKey, float]
    eval_plans: List[EvalPlan]
    plan_keys: List[List[_CacheKey]]


@dataclass(frozen=True)
class _ResolvedAdmit:
    """An admit request resolved against its scenario and fleet defaults."""

    request: Request
    scenario: Scenario
    scenario_key: str
    probability: float
    method: str


class Fleet:
    """Multiplexes RTT-quantile requests over engines and a shared cache.

    Parameters
    ----------
    max_cache_entries:
        Entry budget of the shared answer cache; insertions beyond it
        evict the least-recently-used entries (``stats.evictions``).
    max_engines:
        Budget of internally-managed :class:`Engine` instances (one per
        distinct scenario); the least-recently-used engine — with its
        memoized models — is dropped beyond it.  Evicting an engine
        never evicts served answers: recomputing after any eviction
        returns bit-identical floats.
    probability / method:
        Defaults applied to requests that do not carry their own.
    cost_model:
        The :class:`~repro.core.rtt.CostModel` sizing compiled plans
        (default: a fresh one seeded with static priors).  Every
        executed plan's measured ``exec_s`` is folded back by the
        assembly phase, so heterogeneous batches converge on
        equal-cost chunks; the model is shared with the fleet's
        engines and lent to executors exposing a ``cost_model``
        attribute (LPT dispatch).  Purely a scheduling knob: any cost
        model yields bit-identical floats.
    """

    def __init__(
        self,
        max_cache_entries: int = 100_000,
        *,
        max_engines: int = 64,
        probability: float = DEFAULT_QUANTILE,
        method: str = "inversion",
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if int(max_cache_entries) < 1:
            raise ParameterError("max_cache_entries must be at least 1")
        if int(max_engines) < 1:
            raise ParameterError("max_engines must be at least 1")
        if not 0.0 < probability < 1.0:
            raise ParameterError("probability must lie in (0, 1)")
        if method not in QUANTILE_METHODS:
            raise ParameterError(
                f"method must be one of {QUANTILE_METHODS}; got {method!r}"
            )
        self.max_cache_entries = int(max_cache_entries)
        self.max_engines = int(max_engines)
        self.probability = float(probability)
        self.method = method
        self.cost_model = CostModel() if cost_model is None else cost_model
        self.stats = FleetStats()
        self._cache: "OrderedDict[_CacheKey, float]" = OrderedDict()
        self._engines: "OrderedDict[str, Engine]" = OrderedDict()
        #: scenario key -> Scenario; outlives engine eviction (needed to
        #: persist cache entries and to rebuild engines on demand).
        self._scenarios: Dict[str, Scenario] = {}
        #: Certified surfaces (None until attach_surfaces); surface
        #: answers are never stored into the exact answer cache.
        self._surfaces: Optional[SurfaceIndex] = None
        self._surface_max_bound: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Fleet(max_cache_entries={self.max_cache_entries}, "
            f"engines={len(self._engines)}, cached={len(self._cache)})"
        )

    # ------------------------------------------------------------------
    # Scenario and engine management
    # ------------------------------------------------------------------
    @staticmethod
    def resolve_scenario(spec: ScenarioSpec):
        """Resolve a request's scenario spec to a (mix) scenario."""
        if isinstance(spec, (Scenario, MixScenario)):
            return spec
        if isinstance(spec, Mapping):
            return Scenario.from_dict(spec)
        return scenario_from_spec(spec)

    def engine(self, spec: ScenarioSpec) -> Engine:
        """The internally-managed engine for a scenario (LRU-touched)."""
        scenario = self.resolve_scenario(spec)
        return self._engine_for(scenario, scenario.cache_key())

    def resolve_request(
        self, request: Union[Request, Mapping[str, Any]]
    ) -> ResolvedRequest:
        """Resolve and validate one request without touching fleet state.

        Applies this fleet's default ``probability``/``method``, derives
        the operating point (gamers <-> load, eq. 37) and checks
        downlink and uplink stability, raising
        :class:`~repro.errors.ParameterError` /
        :class:`~repro.errors.StabilityError` on a bad request.  The
        returned :class:`ResolvedRequest` carries the canonical cache
        key under which the answer is (or will be) stored.
        """
        if not isinstance(request, Request):
            request = Request.from_dict(request)
        try:
            scenario = self.resolve_scenario(request.scenario)
        except KeyError as exc:
            # An unknown preset name is a bad *request*, not a lookup
            # programming error — surface it as such so serving layers
            # can map it to a client error.
            raise ParameterError(f"unknown scenario: {exc.args[0]}") from exc
        scenario_key = scenario.cache_key()
        if request.num_gamers is not None:
            num_gamers = float(request.num_gamers)
        else:
            num_gamers = scenario.gamers_at_load(float(request.downlink_load))
            if num_gamers < 1.0:
                raise ParameterError(
                    f"load {float(request.downlink_load):.3f} corresponds to "
                    "fewer than one gamer"
                )
        downlink_load = scenario.load_for_gamers(num_gamers)
        if downlink_load >= 1.0:
            raise StabilityError(
                downlink_load, "downlink load on the aggregation link >= 1"
            )
        uplink_load = scenario.uplink_load_for(downlink_load)
        if uplink_load >= 1.0:
            raise StabilityError(
                uplink_load, "uplink load on the aggregation link >= 1"
            )
        probability = (
            self.probability if request.probability is None else float(request.probability)
        )
        method = self.method if request.method is None else request.method
        key: _CacheKey = (
            scenario_key,
            Engine._gamers_key(num_gamers),
            probability,
            method,
        )
        return ResolvedRequest(
            request=request,
            scenario=scenario,
            num_gamers=num_gamers,
            downlink_load=downlink_load,
            uplink_load=uplink_load,
            probability=probability,
            method=method,
            key=key,
            exact=request.exact,
        )

    def _engine_for(self, scenario: Scenario, key: str) -> Engine:
        engine = self._engines.get(key)
        if engine is None:
            engine = Engine(
                scenario,
                probability=self.probability,
                method=self.method,
                cost_model=self.cost_model,
            )
            self._engines[key] = engine
            self._scenarios[key] = scenario
            self.stats.engines_built += 1
            while len(self._engines) > self.max_engines:
                self._engines.popitem(last=False)
                self.stats.engines_evicted += 1
        else:
            self._engines.move_to_end(key)
        return engine

    # ------------------------------------------------------------------
    # Certified surfaces (the O(1) warm tier; see repro.surface)
    # ------------------------------------------------------------------
    @property
    def surfaces(self) -> Optional[SurfaceIndex]:
        """The attached certified surfaces, or ``None``."""
        return self._surfaces

    def attach_surfaces(
        self,
        surfaces: Union[str, Path, QuantileSurface, SurfaceIndex, Iterable[QuantileSurface]],
        *,
        max_bound: Optional[float] = None,
    ) -> int:
        """Attach certified surfaces for O(1) in-region serving.

        ``surfaces`` is a :class:`~repro.surface.SurfaceIndex`, a single
        :class:`~repro.surface.QuantileSurface`, an iterable of them, or
        a path to a surface document / directory (loaded through
        :func:`repro.surface.load_surfaces`, so corrupt files raise
        :class:`~repro.errors.SurfaceFormatError`).  Repeated calls
        merge; a surface for an already-attached (scenario, method)
        replaces the previous one.  Returns the number of surfaces
        attached by this call.

        ``max_bound``, when given, caps the certified relative error
        this fleet will serve from a surface: any surface whose stored
        bound is looser falls back to the exact path (counted in
        ``stats.surface_fallbacks``).  The cap applies to every
        attached surface, including earlier calls' — it is fleet
        policy, not a per-file property.

        Surface answers never enter the exact answer cache (and are
        therefore never persisted by :meth:`save_cache`); requests with
        ``exact=True``, out-of-region operating points and uncovered
        (scenario, method) pairs are served by the exact stacked path,
        bit-identically to a fleet without surfaces.
        """
        if isinstance(surfaces, (str, Path)):
            surfaces = load_surfaces(surfaces)
        if isinstance(surfaces, QuantileSurface):
            surfaces = [surfaces]
        if self._surfaces is None:
            self._surfaces = SurfaceIndex()
        count = 0
        for surface in surfaces:
            self._surfaces.add(surface)
            count += 1
        if max_bound is not None:
            if not max_bound > 0.0:
                raise ParameterError("max_bound must be positive")
            self._surface_max_bound = float(max_bound)
        return count

    # ------------------------------------------------------------------
    # The shared bounded cache
    # ------------------------------------------------------------------
    def cache_size(self) -> int:
        """Number of answers currently held by the shared cache."""
        return len(self._cache)

    def cached_keys(self) -> List[_CacheKey]:
        """The cache keys in LRU order (least recently used first)."""
        return list(self._cache)

    def clear_cache(self) -> None:
        """Drop every cached answer, engine and scenario (stats are kept)."""
        self._cache.clear()
        self._engines.clear()
        self._scenarios.clear()

    def _prune_scenarios(self) -> None:
        """Drop scenarios no longer referenced by an engine or a cache entry.

        The scenario map exists so :meth:`save_cache` can persist the
        parameters behind every cached answer; once both the engine and
        the last answer of a scenario have been evicted, keeping it
        would be an unbounded leak under a many-scenario request stream.
        """
        if len(self._scenarios) <= len(self._engines):
            return
        referenced = set(self._engines)
        referenced.update(key[0] for key in self._cache)
        for scenario_key in [k for k in self._scenarios if k not in referenced]:
            del self._scenarios[scenario_key]

    def _store(self, key: _CacheKey, value: float) -> None:
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self.max_cache_entries:
            self._cache.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # Serving: plan -> execute -> assemble
    # ------------------------------------------------------------------
    def serve(
        self,
        requests: Iterable[Union[Request, Mapping[str, Any]]],
        *,
        executor=None,
    ) -> List[Answer]:
        """Answer a batch of requests in one pass, in request order.

        A thin driver over the three serving phases: the batch is
        **planned** (requests resolved, sharded by scenario key, probed
        against the shared cache; the distinct misses of each
        (probability, method) group compiled into picklable
        :class:`~repro.core.rtt.EvalPlan` units, one chunk per
        factor-signature group), the plans are **executed** — in-process
        when ``executor`` is omitted, or on any
        :class:`~repro.executors.Executor` such as a
        :class:`~repro.executors.ParallelExecutor` process pool — and
        the partial results are **assembled** back through the shared
        cache with each plan's counters folded into :attr:`stats`.
        Duplicate operating points within the batch are evaluated once;
        every answer carries ``cached`` telling whether it was served
        without any evaluation.  The floats are bit-identical for every
        executor and worker count (and to per-point
        :meth:`Engine.rtt_quantile` answers).

        ``kind="admit"`` requests ride the same stream: they are
        partitioned out before planning, answered through
        :meth:`admit` (an :class:`AdmissionAnswer` each, from a
        certified surface where one brackets the budget, the exact path
        otherwise) and merged back in request order.
        """
        materialized = [
            request if isinstance(request, Request) else Request.from_dict(request)
            for request in requests
        ]
        admits = [r for r in materialized if r.kind == "admit"]
        if not admits:
            batch_plan = self._plan_batch(materialized)
            results = self._execute_plans(batch_plan.eval_plans, executor)
            return self._assemble(batch_plan, results)
        # Validate the admits before any serving state mutates, matching
        # _plan_batch's all-or-nothing contract for the rtt partition.
        admit_resolved = [self._resolve_admit(request) for request in admits]
        rtt_requests = [r for r in materialized if r.kind != "admit"]
        batch_plan = self._plan_batch(rtt_requests)
        results = self._execute_plans(batch_plan.eval_plans, executor)
        rtt_answers = iter(self._assemble(batch_plan, results))
        admit_answers = iter(self._answer_admit(item) for item in admit_resolved)
        return [
            next(admit_answers) if request.kind == "admit" else next(rtt_answers)
            for request in materialized
        ]

    def _plan_batch(
        self, requests: Iterable[Union[Request, Mapping[str, Any]]]
    ) -> "_BatchPlan":
        """Phase 1: resolve, probe the cache and compile the miss plans.

        Every request of the batch is resolved and validated —
        operating-point range and downlink/uplink stability — *before*
        any serving state (statistics, engine LRU, cache recency) is
        touched, so a batch poisoned by one bad request raises without
        mutating the fleet: counters, cache order and engines are
        exactly as they were.
        """
        # Resolve and validate without mutating any serving state.  The
        # model rebuilt by the executing worker re-checks stability, but
        # the error belongs here — and must fire before any bookkeeping.
        resolved = [self.resolve_request(request) for request in requests]

        # The whole batch is valid: account for it and touch the engines.
        self.stats.batches += 1
        self.stats.requests += len(resolved)
        for item in resolved:
            self._engine_for(item.scenario, item.key[0])

        # Probe the cache, then any attached certified surfaces; collect
        # the distinct misses.  The exact answer cache wins over a
        # surface (its floats are exact), surface answers are served
        # without ever entering that cache, and everything the surfaces
        # decline — no surface for the (scenario, method), exact floats
        # demanded, operating point outside the certified region — goes
        # down the exact stacked path unchanged.
        values: Dict[_CacheKey, float] = {}
        cached_flags: List[bool] = []
        misses: "OrderedDict[_CacheKey, Tuple[Scenario, float]]" = OrderedDict()
        for item in resolved:
            key = item.key
            if key in self._cache:
                self._cache.move_to_end(key)
                values[key] = self._cache[key]
                self.stats.cache_hits += 1
                cached_flags.append(True)
                continue
            if self._surfaces is not None:
                value, outcome = self._surfaces.probe(
                    key[0],
                    item.method,
                    item.downlink_load,
                    item.probability,
                    exact=item.exact,
                    max_bound=self._surface_max_bound,
                )
                if outcome == "hit":
                    self.stats.surface_hits += 1
                    values[key] = value
                    cached_flags.append(True)
                    continue
                if outcome == "fallback":
                    self.stats.surface_fallbacks += 1
                else:
                    self.stats.surface_misses += 1
            self.stats.cache_misses += 1
            cached_flags.append(False)
            if key not in misses:
                misses[key] = (item.scenario, item.num_gamers)

        # Compile the misses of each (probability, method) group into
        # self-contained plans: parameters only, no live models.
        groups: "OrderedDict[Tuple[float, str], List[_CacheKey]]" = OrderedDict()
        for key in misses:
            groups.setdefault((key[2], key[3]), []).append(key)
        eval_plans: List[EvalPlan] = []
        plan_keys: List[List[_CacheKey]] = []
        for (probability, method), keys in groups.items():
            params = [
                {**misses[key][0].model_kwargs(), "num_gamers": misses[key][1]}
                for key in keys
            ]
            for plan in compile_eval_plans(
                params, probability, method=method, cost_model=self.cost_model
            ):
                eval_plans.append(plan)
                plan_keys.append([keys[i] for i in plan.indices])
        return _BatchPlan(
            resolved=resolved,
            cached_flags=cached_flags,
            values=values,
            eval_plans=eval_plans,
            plan_keys=plan_keys,
        )

    def _share_cost_model(self, executor) -> None:
        """Lend this fleet's cost model to an executor without one.

        Executors exposing a ``cost_model`` attribute (the local
        process pool's LPT dispatch) get the fleet's measured model, so
        their predicted-cost ordering sees every observation the
        assembly phase folds back.  Purely scheduling: results remain
        plan-ordered and bit-identical.
        """
        if (
            executor is not None
            and hasattr(executor, "cost_model")
            and executor.cost_model is None
        ):
            executor.cost_model = self.cost_model

    def _execute_plans(
        self, plans: Sequence[EvalPlan], executor=None
    ) -> List[PlanResult]:
        """Phase 2: run the compiled plans (in-process without an executor)."""
        if executor is None:
            return [execute_plan(plan) for plan in plans]
        self._share_cost_model(executor)
        return executor.run(plans)

    def _assemble(
        self, batch_plan: "_BatchPlan", results: Sequence[PlanResult]
    ) -> List[Answer]:
        """Phase 3: merge the plan results back through the shared cache."""
        values = batch_plan.values
        own_pid = os.getpid()
        for keys, plan, result in zip(
            batch_plan.plan_keys, batch_plan.eval_plans, results
        ):
            self.stats.plans_executed += 1
            if result.worker_pid != own_pid:
                self.stats.remote_plans += 1
            if result.host is not None:
                entry = self.stats.hosts.setdefault(
                    result.host, {"plans": 0, "redispatches": 0, "wire_s": 0.0}
                )
                entry["plans"] += 1
                entry["redispatches"] += result.redispatches
                entry["wire_s"] += result.wire_s
            signature = plan_signature(plan)
            cost = self.stats.plan_costs.setdefault(
                signature, {"plans": 0, "models": 0, "exec_s": 0.0}
            )
            cost["plans"] += 1
            cost["models"] += len(plan.indices)
            cost["exec_s"] += result.exec_s
            self.cost_model.observe(signature, len(plan.indices), result.exec_s)
            self.stats.evaluations += result.evaluations
            self.stats.stacked_mgf_calls += result.stacked_mgf_calls
            for key, value in zip(keys, result.values):
                values[key] = float(value)
                self._store(key, float(value))

        answers = [
            item.answer(values[item.key], cached=cached)
            for item, cached in zip(batch_plan.resolved, batch_plan.cached_flags)
        ]
        self._prune_scenarios()
        return answers

    def request(
        self,
        scenario: ScenarioSpec,
        *,
        downlink_load: Optional[float] = None,
        num_gamers: Optional[float] = None,
        probability: Optional[float] = None,
        method: Optional[str] = None,
        tag: Optional[str] = None,
    ) -> Answer:
        """Serve a single request (convenience wrapper over :meth:`serve`)."""
        return self.serve(
            [
                Request(
                    scenario,
                    downlink_load=downlink_load,
                    num_gamers=num_gamers,
                    probability=probability,
                    method=method,
                    tag=tag,
                )
            ]
        )[0]

    # ------------------------------------------------------------------
    # Admission control (Section 4 served online)
    # ------------------------------------------------------------------
    def _resolve_admit(
        self, request: Union[Request, Mapping[str, Any]]
    ) -> "_ResolvedAdmit":
        """Resolve and validate an admit request without mutating state."""
        if not isinstance(request, Request):
            request = Request.from_dict(request)
        if request.kind != "admit":
            raise ParameterError(
                f'expected a kind="admit" request; got kind={request.kind!r}'
            )
        try:
            scenario = self.resolve_scenario(request.scenario)
        except KeyError as exc:
            raise ParameterError(f"unknown scenario: {exc.args[0]}") from exc
        probability = (
            self.probability
            if request.probability is None
            else float(request.probability)
        )
        method = self.method if request.method is None else request.method
        return _ResolvedAdmit(
            request=request,
            scenario=scenario,
            scenario_key=scenario.cache_key(),
            probability=probability,
            method=method,
        )

    def _answer_admit(self, item: "_ResolvedAdmit") -> AdmissionAnswer:
        """Answer one resolved admit request through the scenario engine.

        A certified surface attached to this fleet for the (scenario,
        method) — and not capped out by ``max_bound`` — is handed to
        the engine, whose :meth:`Engine.admit` inverts the budget on
        the surface's O(1) lookup when it certifies the root in-region
        (zero evaluation plans executed) and falls back to the exact
        stacked path otherwise; ``exact=True`` requests skip the
        surface outright.
        """
        request = item.request
        self.stats.requests += 1
        self.stats.admits += 1
        engine = self._engine_for(item.scenario, item.scenario_key)
        if self._surfaces is not None and not request.exact:
            surface = self._surfaces.get(item.scenario_key, item.method)
            if surface is not None and (
                self._surface_max_bound is None
                or surface.certified_rel_bound <= self._surface_max_bound
            ):
                engine.attach_surface(surface)
        result = engine.admit(
            float(request.rtt_budget_ms) / 1e3,
            item.probability,
            item.method,
            load=(
                None
                if request.downlink_load is None
                else float(request.downlink_load)
            ),
            num_gamers=(
                None if request.num_gamers is None else float(request.num_gamers)
            ),
            exact=request.exact,
        )
        if result.source == "surface":
            self.stats.admit_surface += 1
        else:
            self.stats.admit_exact += 1
        return AdmissionAnswer(
            scenario_key=item.scenario_key,
            method=item.method,
            result=result,
            tag=request.tag,
        )

    def admit(self, request: Union[Request, Mapping[str, Any]]) -> AdmissionAnswer:
        """Serve one admission-control request.

        "Can this scenario take (more) gamers and keep the
        ``probability`` RTT quantile under ``rtt_budget_ms``?" — see
        :meth:`Engine.admit` for the semantics (an unmeetable budget is
        ``admitted=False``, never an error) and :meth:`serve` for
        mixing admits into a request stream.
        """
        return self._answer_admit(self._resolve_admit(request))

    # ------------------------------------------------------------------
    # Cache persistence
    # ------------------------------------------------------------------
    def save_cache(self, path: Union[str, Path]) -> int:
        """Write the answer cache to ``path`` as JSON; returns the entry count.

        Entries are written in LRU order (least recently used first) so
        a later :meth:`warm_start` restores both the floats — exactly,
        JSON round-trips every double — and the eviction order.

        The write is **atomic**
        (:func:`~repro.persist.atomic_write_text`): a crash mid-write
        or a concurrent :meth:`warm_start` reader never sees a
        truncated file — either the previous cache or the new one,
        never garbage.
        """
        scenarios = {}
        entries = []
        for (scenario_key, gamers, probability, method), value in self._cache.items():
            scenario = self._scenarios.get(scenario_key)
            if scenario is None:  # pragma: no cover - defensive
                continue
            scenarios.setdefault(scenario_key, scenario.to_dict())
            entries.append(
                {
                    "scenario": scenario_key,
                    "num_gamers": gamers,
                    "probability": probability,
                    "method": method,
                    "rtt_quantile_s": value,
                }
            )
        payload = {
            "format": _CACHE_FORMAT,
            "version": _CACHE_VERSION,
            "scenarios": scenarios,
            "entries": entries,
        }
        atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
        return len(entries)

    def warm_start(self, path: Union[str, Path]) -> int:
        """Load a cache previously written with :meth:`save_cache`.

        Scenario keys are recomputed from the persisted parameter
        dictionaries (the file's keys are cross-checked), so a cache
        file remains valid even if the key derivation changes between
        versions.  Returns the number of entries loaded; loading more
        than ``max_cache_entries`` keeps the most recently used ones.

        Corrupted or mismatched files — invalid JSON, a foreign format,
        malformed scenario parameters, entries with missing or
        non-numeric fields, unknown quantile methods or dangling
        scenario references — raise
        :class:`~repro.errors.CacheFormatError` naming the offending
        key, instead of the bare ``json``/``KeyError`` tracebacks such
        files used to produce.  Entries stored before the failing one
        are kept (the cache stays usable).
        """
        path_str = str(path)
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise CacheFormatError(
                f"{path_str} is not valid JSON: {exc}", path=path_str
            ) from exc
        if not isinstance(data, dict) or data.get("format") != _CACHE_FORMAT:
            raise CacheFormatError(
                f"{path_str} is not a fleet cache file", path=path_str
            )
        if data.get("version") != _CACHE_VERSION:
            raise CacheFormatError(
                f"unsupported fleet cache version {data.get('version')!r}",
                path=path_str,
                key="version",
            )
        scenarios = data.get("scenarios", {})
        entries = data.get("entries", [])
        if not isinstance(scenarios, dict):
            raise CacheFormatError(
                "the 'scenarios' section must be a JSON object",
                path=path_str,
                key="scenarios",
            )
        if not isinstance(entries, list):
            raise CacheFormatError(
                "the 'entries' section must be a JSON array",
                path=path_str,
                key="entries",
            )
        keys: Dict[str, str] = {}
        restored: Dict[str, Scenario] = {}
        for stored_key, parameters in scenarios.items():
            try:
                scenario = Scenario.from_dict(parameters)
            except (ReproError, TypeError, ValueError) as exc:
                raise CacheFormatError(
                    f"cache scenario {stored_key!r} is malformed: {exc}",
                    path=path_str,
                    key=str(stored_key),
                ) from exc
            keys[stored_key] = scenario.cache_key()
            restored[stored_key] = scenario
        for stored_key, scenario in restored.items():
            self._scenarios[keys[stored_key]] = scenario
        loaded = 0
        for number, entry in enumerate(entries):
            if not isinstance(entry, Mapping):
                raise CacheFormatError(
                    f"cache entry {number} is not a JSON object",
                    path=path_str,
                    key=str(number),
                )
            try:
                stored_key = entry["scenario"]
                num_gamers = float(entry["num_gamers"])
                probability = float(entry["probability"])
                method = str(entry["method"])
                value = float(entry["rtt_quantile_s"])
            except KeyError as exc:
                raise CacheFormatError(
                    f"cache entry {number} is missing field {exc.args[0]!r}",
                    path=path_str,
                    key=str(exc.args[0]),
                ) from exc
            except (TypeError, ValueError) as exc:
                raise CacheFormatError(
                    f"cache entry {number} holds a non-numeric value: {exc}",
                    path=path_str,
                    key=str(number),
                ) from exc
            if not isinstance(stored_key, str):
                raise CacheFormatError(
                    f"cache entry {number} has a non-string scenario reference",
                    path=path_str,
                    key=str(number),
                )
            if stored_key not in keys:
                raise CacheFormatError(
                    f"cache entry references unknown scenario {stored_key!r}",
                    path=path_str,
                    key=str(stored_key),
                )
            if method not in QUANTILE_METHODS:
                raise CacheFormatError(
                    f"cache entry {number} names unknown method {method!r}",
                    path=path_str,
                    key=method,
                )
            # Canonicalize the gamers key exactly like serving does —
            # an externally generated or hand-edited file may carry a
            # raw float whose entry no lookup would ever hit otherwise.
            key: _CacheKey = (
                keys[stored_key],
                Engine._gamers_key(num_gamers),
                probability,
                method,
            )
            self._store(key, value)
            loaded += 1
        self.stats.warm_loaded += loaded
        return loaded


class AsyncFleet:
    """Asyncio facade over a :class:`Fleet` for long-running services.

    The synchronous phases — planning and assembly — are cheap cache
    and dictionary work and run inline on the event loop (each is
    atomic: no ``await`` interleaves inside them); the expensive
    execute phase is awaited on an executor, so the loop keeps serving
    other coroutines while the plans run.  Without an executor the
    plans execute on the loop's default thread pool; pass a
    :class:`~repro.executors.ParallelExecutor` to fan them out over
    worker processes.  Answers are bit-identical to :meth:`Fleet.serve`
    whatever the executor.

    Concurrent ``serve_async`` calls are safe: overlapping batches that
    miss the same operating point may evaluate it more than once, but
    every evaluation produces the same float, so whichever result is
    assembled last wins with no observable difference.  To avoid even
    that duplicate work, put a :class:`repro.serve.RequestCoalescer` in
    front: it gathers concurrent callers into micro-batch windows and
    single-flights identical in-flight misses, so each operating point
    is evaluated exactly once per window.

    Example::

        fleet = AsyncFleet(max_cache_entries=10_000)
        with ParallelExecutor(workers=4) as executor:
            answers = await fleet.serve_async(requests, executor=executor)
    """

    def __init__(
        self,
        fleet: Optional[Fleet] = None,
        *,
        executor=None,
        **fleet_kwargs: Any,
    ) -> None:
        if fleet is not None and fleet_kwargs:
            raise ParameterError(
                "pass either an existing Fleet or Fleet keyword arguments, not both"
            )
        self.fleet = fleet if fleet is not None else Fleet(**fleet_kwargs)
        self.executor = executor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AsyncFleet({self.fleet!r}, executor={self.executor!r})"

    @property
    def stats(self) -> FleetStats:
        return self.fleet.stats

    async def serve_async(
        self,
        requests: Iterable[Union[Request, Mapping[str, Any]]],
        *,
        executor=None,
    ) -> List[Answer]:
        """Asynchronous :meth:`Fleet.serve`: plan inline, await execute.

        ``kind="admit"`` requests are partitioned out before planning
        and answered on the loop's default thread pool (the exact
        fallback path runs evaluation plans), then merged back in
        request order — matching :meth:`Fleet.serve`.
        """
        executor = self.executor if executor is None else executor
        fleet = self.fleet
        materialized = [
            request if isinstance(request, Request) else Request.from_dict(request)
            for request in requests
        ]
        admits = [r for r in materialized if r.kind == "admit"]
        admit_resolved = [fleet._resolve_admit(request) for request in admits]
        rtt_requests = [r for r in materialized if r.kind != "admit"]
        batch_plan = fleet._plan_batch(rtt_requests)
        loop = asyncio.get_running_loop()
        if not batch_plan.eval_plans:
            results: List[PlanResult] = []
        elif executor is None:
            results = await loop.run_in_executor(
                None, fleet._execute_plans, batch_plan.eval_plans
            )
        else:
            fleet._share_cost_model(executor)
            results = await executor.run_async(batch_plan.eval_plans)
        answers = fleet._assemble(batch_plan, results)
        if not admits:
            return answers
        admit_answers = iter(
            [
                await loop.run_in_executor(None, fleet._answer_admit, item)
                for item in admit_resolved
            ]
        )
        rtt_answers = iter(answers)
        return [
            next(admit_answers) if request.kind == "admit" else next(rtt_answers)
            for request in materialized
        ]

    async def request_async(
        self,
        scenario: ScenarioSpec,
        *,
        downlink_load: Optional[float] = None,
        num_gamers: Optional[float] = None,
        probability: Optional[float] = None,
        method: Optional[str] = None,
        tag: Optional[str] = None,
    ) -> Answer:
        """Serve one request (convenience wrapper over :meth:`serve_async`)."""
        answers = await self.serve_async(
            [
                Request(
                    scenario,
                    downlink_load=downlink_load,
                    num_gamers=num_gamers,
                    probability=probability,
                    method=method,
                    tag=tag,
                )
            ]
        )
        return answers[0]

    # Synchronous passthroughs (cache persistence is fast file I/O,
    # surface attachment a dictionary merge).
    def attach_surfaces(self, surfaces, *, max_bound: Optional[float] = None) -> int:
        """See :meth:`Fleet.attach_surfaces`."""
        return self.fleet.attach_surfaces(surfaces, max_bound=max_bound)

    def save_cache(self, path: Union[str, Path]) -> int:
        """See :meth:`Fleet.save_cache`."""
        return self.fleet.save_cache(path)

    def warm_start(self, path: Union[str, Path]) -> int:
        """See :meth:`Fleet.warm_start`."""
        return self.fleet.warm_start(path)
