"""Request-level serving of RTT lookups across many scenarios.

:class:`~repro.engine.Engine` answers questions about *one* scenario;
the dimensioning question of the paper, asked at production scale, is a
**stream of requests** spanning many scenarios at once ("the 99.999%
ping time of preset X at load y", millions of times, across the whole
preset catalogue).  :class:`Fleet` is the entry point for that workload:

* requests are plain :class:`Request` values (or JSONL dictionaries, see
  the CLI's ``fleet`` subcommand) naming a scenario — preset name,
  ``Scenario`` object, parameter mapping or JSON file path — plus an
  operating point (downlink load or gamer count) and optional
  per-request quantile level and method;
* :meth:`Fleet.serve` answers a whole batch in one pass: requests are
  sharded by :meth:`Scenario.cache_key` onto internally-managed engines,
  answered from a **shared bounded LRU cache** when possible, and the
  misses of every (probability, method) group are evaluated together
  through the stacked cross-model inverter
  (:class:`~repro.core.rtt.QueueingMgfStack` driving
  :func:`~repro.core.inversion.quantiles_from_mgfs`), so a heterogeneous
  multi-scenario batch costs one joint array evaluation per search
  round instead of one per model — with floats identical to per-point
  :meth:`Engine.rtt_quantile` answers;
* the cache has a configurable entry budget; insertions beyond it evict
  the least-recently-used answers, and every cache event is surfaced in
  :class:`FleetStats`;
* :meth:`Fleet.save_cache` / :meth:`Fleet.warm_start` persist and
  restore the answer cache as JSON keyed by ``Scenario.cache_key()``,
  so repeated CLI/CI runs start warm (floats round-trip exactly).

Example::

    from repro import Fleet, Request

    fleet = Fleet(max_cache_entries=10_000)
    answers = fleet.serve([
        Request("paper-dsl", downlink_load=0.40),
        Request("ftth", downlink_load=0.40),
        Request("lte", num_gamers=120.0, probability=0.9999),
    ])
    answers[0].rtt_quantile_ms
    fleet.stats.as_dict()
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from .core.rtt import (
    DEFAULT_QUANTILE,
    QUANTILE_METHODS,
    batch_rtt_quantiles,
    stacked_eval_count,
)
from .engine import Engine
from .errors import ParameterError
from .scenarios.base import Scenario
from .scenarios.registry import scenario_from_spec

__all__ = ["Request", "Answer", "FleetStats", "Fleet"]

#: Any of: a preset name / JSON file path, a Scenario, or a parameter mapping.
ScenarioSpec = Union[str, Scenario, Mapping[str, Any]]

#: Accepted spellings of the Request JSONL fields (CLI request files).
_REQUEST_KEYS = {
    "scenario": "scenario",
    "load": "downlink_load",
    "downlink_load": "downlink_load",
    "gamers": "num_gamers",
    "num_gamers": "num_gamers",
    "probability": "probability",
    "method": "method",
    "tag": "tag",
}


@dataclass(frozen=True)
class Request:
    """One RTT-quantile lookup: a scenario plus an operating point.

    Exactly one of ``downlink_load`` (on the bottleneck link, in (0, 1))
    and ``num_gamers`` (>= 1) must be given.  ``probability`` and
    ``method`` default to the owning :class:`Fleet`'s values; ``tag`` is
    an opaque caller identifier echoed in the :class:`Answer`.
    """

    scenario: ScenarioSpec
    downlink_load: Optional[float] = None
    num_gamers: Optional[float] = None
    probability: Optional[float] = None
    method: Optional[str] = None
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.downlink_load is None) == (self.num_gamers is None):
            raise ParameterError(
                "a Request needs exactly one of downlink_load= or num_gamers="
            )
        if self.downlink_load is not None and not 0.0 < float(self.downlink_load) < 1.0:
            raise ParameterError("downlink_load must lie in (0, 1)")
        if self.num_gamers is not None and float(self.num_gamers) < 1.0:
            raise ParameterError("num_gamers must be at least 1")
        if self.probability is not None and not 0.0 < float(self.probability) < 1.0:
            raise ParameterError("probability must lie in (0, 1)")
        if self.method is not None and self.method not in QUANTILE_METHODS:
            raise ParameterError(
                f"method must be one of {QUANTILE_METHODS}; got {self.method!r}"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Request":
        """Build a request from a JSONL record.

        ``load``/``gamers`` are accepted as short spellings of
        ``downlink_load``/``num_gamers``; unknown keys raise so typos in
        request files do not pass silently.
        """
        unknown = sorted(set(data) - set(_REQUEST_KEYS))
        if unknown:
            raise ParameterError(
                f"unknown request field(s) {unknown}; known: {sorted(set(_REQUEST_KEYS))}"
            )
        if "scenario" not in data:
            raise ParameterError("a request record needs a 'scenario' field")
        kwargs: Dict[str, Any] = {}
        for key, value in data.items():
            name = _REQUEST_KEYS[key]
            if name in kwargs:
                raise ParameterError(
                    f"request field {key!r} conflicts with another spelling of {name!r}"
                )
            kwargs[name] = value
        for name in ("downlink_load", "num_gamers", "probability"):
            if kwargs.get(name) is not None:
                kwargs[name] = float(kwargs[name])
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """JSONL-ready dictionary view (omits unset fields)."""
        scenario = self.scenario
        if isinstance(scenario, Scenario):
            scenario = scenario.to_dict()
        out: Dict[str, Any] = {"scenario": scenario}
        for name in ("downlink_load", "num_gamers", "probability", "method", "tag"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out


@dataclass(frozen=True)
class Answer:
    """The served result of one :class:`Request` (all delays in seconds)."""

    scenario_key: str
    num_gamers: float
    downlink_load: float
    uplink_load: float
    probability: float
    method: str
    rtt_quantile_s: float
    cached: bool
    tag: Optional[str] = None

    @property
    def rtt_quantile_ms(self) -> float:
        return 1e3 * self.rtt_quantile_s

    def to_dict(self) -> Dict[str, Any]:
        """JSONL-ready dictionary view."""
        out: Dict[str, Any] = {
            "scenario_key": self.scenario_key,
            "num_gamers": self.num_gamers,
            "downlink_load": self.downlink_load,
            "uplink_load": self.uplink_load,
            "probability": self.probability,
            "method": self.method,
            "rtt_quantile_s": self.rtt_quantile_s,
            "rtt_quantile_ms": self.rtt_quantile_ms,
            "cached": self.cached,
        }
        if self.tag is not None:
            out["tag"] = self.tag
        return out


@dataclass
class FleetStats:
    """Cache and evaluation bookkeeping of one :class:`Fleet`."""

    requests: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0
    evaluations: int = 0
    stacked_mgf_calls: int = 0
    engines_built: int = 0
    engines_evicted: int = 0
    warm_loaded: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "evictions": self.evictions,
            "evaluations": self.evaluations,
            "stacked_mgf_calls": self.stacked_mgf_calls,
            "engines_built": self.engines_built,
            "engines_evicted": self.engines_evicted,
            "warm_loaded": self.warm_loaded,
        }

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered from the cache (0 when idle)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


#: A fully-resolved cache key: (scenario key, gamers key, probability, method).
_CacheKey = Tuple[str, float, float, str]

#: Magic header of the persisted cache files.
_CACHE_FORMAT = "repro-fleet-cache"
_CACHE_VERSION = 1


class Fleet:
    """Multiplexes RTT-quantile requests over engines and a shared cache.

    Parameters
    ----------
    max_cache_entries:
        Entry budget of the shared answer cache; insertions beyond it
        evict the least-recently-used entries (``stats.evictions``).
    max_engines:
        Budget of internally-managed :class:`Engine` instances (one per
        distinct scenario); the least-recently-used engine — with its
        memoized models — is dropped beyond it.  Evicting an engine
        never evicts served answers: recomputing after any eviction
        returns bit-identical floats.
    probability / method:
        Defaults applied to requests that do not carry their own.
    """

    def __init__(
        self,
        max_cache_entries: int = 100_000,
        *,
        max_engines: int = 64,
        probability: float = DEFAULT_QUANTILE,
        method: str = "inversion",
    ) -> None:
        if int(max_cache_entries) < 1:
            raise ParameterError("max_cache_entries must be at least 1")
        if int(max_engines) < 1:
            raise ParameterError("max_engines must be at least 1")
        if not 0.0 < probability < 1.0:
            raise ParameterError("probability must lie in (0, 1)")
        if method not in QUANTILE_METHODS:
            raise ParameterError(
                f"method must be one of {QUANTILE_METHODS}; got {method!r}"
            )
        self.max_cache_entries = int(max_cache_entries)
        self.max_engines = int(max_engines)
        self.probability = float(probability)
        self.method = method
        self.stats = FleetStats()
        self._cache: "OrderedDict[_CacheKey, float]" = OrderedDict()
        self._engines: "OrderedDict[str, Engine]" = OrderedDict()
        #: scenario key -> Scenario; outlives engine eviction (needed to
        #: persist cache entries and to rebuild engines on demand).
        self._scenarios: Dict[str, Scenario] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Fleet(max_cache_entries={self.max_cache_entries}, "
            f"engines={len(self._engines)}, cached={len(self._cache)})"
        )

    # ------------------------------------------------------------------
    # Scenario and engine management
    # ------------------------------------------------------------------
    @staticmethod
    def resolve_scenario(spec: ScenarioSpec) -> Scenario:
        """Resolve a request's scenario spec to a :class:`Scenario`."""
        if isinstance(spec, Scenario):
            return spec
        if isinstance(spec, Mapping):
            return Scenario.from_dict(spec)
        return scenario_from_spec(spec)

    def engine(self, spec: ScenarioSpec) -> Engine:
        """The internally-managed engine for a scenario (LRU-touched)."""
        scenario = self.resolve_scenario(spec)
        return self._engine_for(scenario, scenario.cache_key())

    def _engine_for(self, scenario: Scenario, key: str) -> Engine:
        engine = self._engines.get(key)
        if engine is None:
            engine = Engine(scenario, probability=self.probability, method=self.method)
            self._engines[key] = engine
            self._scenarios[key] = scenario
            self.stats.engines_built += 1
            while len(self._engines) > self.max_engines:
                self._engines.popitem(last=False)
                self.stats.engines_evicted += 1
        else:
            self._engines.move_to_end(key)
        return engine

    # ------------------------------------------------------------------
    # The shared bounded cache
    # ------------------------------------------------------------------
    def cache_size(self) -> int:
        """Number of answers currently held by the shared cache."""
        return len(self._cache)

    def cached_keys(self) -> List[_CacheKey]:
        """The cache keys in LRU order (least recently used first)."""
        return list(self._cache)

    def clear_cache(self) -> None:
        """Drop every cached answer, engine and scenario (stats are kept)."""
        self._cache.clear()
        self._engines.clear()
        self._scenarios.clear()

    def _prune_scenarios(self) -> None:
        """Drop scenarios no longer referenced by an engine or a cache entry.

        The scenario map exists so :meth:`save_cache` can persist the
        parameters behind every cached answer; once both the engine and
        the last answer of a scenario have been evicted, keeping it
        would be an unbounded leak under a many-scenario request stream.
        """
        if len(self._scenarios) <= len(self._engines):
            return
        referenced = set(self._engines)
        referenced.update(key[0] for key in self._cache)
        for scenario_key in [k for k in self._scenarios if k not in referenced]:
            del self._scenarios[scenario_key]

    def _store(self, key: _CacheKey, value: float) -> None:
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self.max_cache_entries:
            self._cache.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(self, requests: Iterable[Union[Request, Mapping[str, Any]]]) -> List[Answer]:
        """Answer a batch of requests in one pass, in request order.

        Requests are resolved and sharded by scenario key, probed
        against the shared cache, and the distinct misses of each
        (probability, method) group are evaluated together through the
        stacked cross-model inverter.  Duplicate operating points within
        the batch are evaluated once; every answer carries ``cached``
        telling whether it was served without any evaluation.
        """
        batch = [
            r if isinstance(r, Request) else Request.from_dict(r) for r in requests
        ]
        self.stats.batches += 1
        self.stats.requests += len(batch)

        resolved = []
        for request in batch:
            scenario = self.resolve_scenario(request.scenario)
            scenario_key = scenario.cache_key()
            engine = self._engine_for(scenario, scenario_key)
            if request.num_gamers is not None:
                num_gamers = float(request.num_gamers)
            else:
                num_gamers = scenario.gamers_at_load(float(request.downlink_load))
                if num_gamers < 1.0:
                    raise ParameterError(
                        f"load {float(request.downlink_load):.3f} corresponds to "
                        "fewer than one gamer"
                    )
            probability = (
                self.probability if request.probability is None else float(request.probability)
            )
            method = self.method if request.method is None else request.method
            key: _CacheKey = (
                scenario_key,
                Engine._gamers_key(num_gamers),
                probability,
                method,
            )
            resolved.append((request, scenario, engine, num_gamers, key))

        # Probe the cache; collect the distinct misses.
        values: Dict[_CacheKey, float] = {}
        cached_flags: List[bool] = []
        misses: "OrderedDict[_CacheKey, Tuple[Engine, float]]" = OrderedDict()
        for request, scenario, engine, num_gamers, key in resolved:
            if key in self._cache:
                self._cache.move_to_end(key)
                values[key] = self._cache[key]
                self.stats.cache_hits += 1
                cached_flags.append(True)
            else:
                self.stats.cache_misses += 1
                cached_flags.append(False)
                if key not in misses:
                    misses[key] = (engine, num_gamers)

        # Evaluate the misses, grouped by (probability, method) so each
        # group runs one stacked multi-scenario inversion.
        groups: "OrderedDict[Tuple[float, str], List[_CacheKey]]" = OrderedDict()
        for key in misses:
            groups.setdefault((key[2], key[3]), []).append(key)
        stacked_before = stacked_eval_count()
        for (probability, method), keys in groups.items():
            models = [misses[key][0].model_for_gamers(misses[key][1]) for key in keys]
            quantiles = batch_rtt_quantiles(models, probability, method=method)
            for key, value in zip(keys, quantiles):
                values[key] = float(value)
                self._store(key, float(value))
                self.stats.evaluations += 1
        self.stats.stacked_mgf_calls += stacked_eval_count() - stacked_before

        answers = []
        for (request, scenario, engine, num_gamers, key), cached in zip(
            resolved, cached_flags
        ):
            downlink_load = scenario.load_for_gamers(num_gamers)
            answers.append(
                Answer(
                    scenario_key=key[0],
                    num_gamers=num_gamers,
                    downlink_load=downlink_load,
                    uplink_load=scenario.uplink_load_for(downlink_load),
                    probability=key[2],
                    method=key[3],
                    rtt_quantile_s=values[key],
                    cached=cached,
                    tag=request.tag,
                )
            )
        self._prune_scenarios()
        return answers

    def request(
        self,
        scenario: ScenarioSpec,
        *,
        downlink_load: Optional[float] = None,
        num_gamers: Optional[float] = None,
        probability: Optional[float] = None,
        method: Optional[str] = None,
        tag: Optional[str] = None,
    ) -> Answer:
        """Serve a single request (convenience wrapper over :meth:`serve`)."""
        return self.serve(
            [
                Request(
                    scenario,
                    downlink_load=downlink_load,
                    num_gamers=num_gamers,
                    probability=probability,
                    method=method,
                    tag=tag,
                )
            ]
        )[0]

    # ------------------------------------------------------------------
    # Cache persistence
    # ------------------------------------------------------------------
    def save_cache(self, path: Union[str, Path]) -> int:
        """Write the answer cache to ``path`` as JSON; returns the entry count.

        Entries are written in LRU order (least recently used first) so
        a later :meth:`warm_start` restores both the floats — exactly,
        JSON round-trips every double — and the eviction order.
        """
        scenarios = {}
        entries = []
        for (scenario_key, gamers, probability, method), value in self._cache.items():
            scenario = self._scenarios.get(scenario_key)
            if scenario is None:  # pragma: no cover - defensive
                continue
            scenarios.setdefault(scenario_key, scenario.to_dict())
            entries.append(
                {
                    "scenario": scenario_key,
                    "num_gamers": gamers,
                    "probability": probability,
                    "method": method,
                    "rtt_quantile_s": value,
                }
            )
        payload = {
            "format": _CACHE_FORMAT,
            "version": _CACHE_VERSION,
            "scenarios": scenarios,
            "entries": entries,
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return len(entries)

    def warm_start(self, path: Union[str, Path]) -> int:
        """Load a cache previously written with :meth:`save_cache`.

        Scenario keys are recomputed from the persisted parameter
        dictionaries (the file's keys are cross-checked), so a cache
        file remains valid even if the key derivation changes between
        versions.  Returns the number of entries loaded; loading more
        than ``max_cache_entries`` keeps the most recently used ones.
        """
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("format") != _CACHE_FORMAT:
            raise ParameterError(f"{path!s} is not a fleet cache file")
        if data.get("version") != _CACHE_VERSION:
            raise ParameterError(
                f"unsupported fleet cache version {data.get('version')!r}"
            )
        keys: Dict[str, str] = {}
        for stored_key, parameters in data.get("scenarios", {}).items():
            scenario = Scenario.from_dict(parameters)
            key = scenario.cache_key()
            keys[stored_key] = key
            self._scenarios[key] = scenario
        loaded = 0
        for entry in data.get("entries", []):
            stored_key = entry["scenario"]
            if stored_key not in keys:
                raise ParameterError(
                    f"cache entry references unknown scenario {stored_key!r}"
                )
            key: _CacheKey = (
                keys[stored_key],
                float(entry["num_gamers"]),
                float(entry["probability"]),
                str(entry["method"]),
            )
            self._store(key, float(entry["rtt_quantile_s"]))
            loaded += 1
        self.stats.warm_loaded += loaded
        return loaded
