"""Adaptive construction of certified quantile surfaces.

The builder turns the exact stacked inversion into a precomputed
:class:`~repro.surface.lookup.QuantileSurface` with a *certified*
relative error bound:

1. evaluate the exact path on a tensor grid of Chebyshev–Gauss–Lobatto
   nodes over (load, u) — ``u = -log10(1 - p)`` — and least-squares fit
   a 2-D Chebyshev expansion of ``log(rtt_quantile_s)``;
2. bound the fit's relative error by probing a denser *uniform* grid
   against the exact path (worst observed error times a safety
   factor);
3. if the bound does not meet the caller's tolerance, refine to the
   next grid on a fixed ladder and repeat.

Fitting the logarithm makes the relative error of the surface the
absolute error of the fit, so one maximum over the probe grid bounds
the quantity callers actually care about; RTT quantiles of the
paper's model are smooth in both coordinates, so the Chebyshev error
decays geometrically up the ladder (the probe-grid maximum is a
reliable stand-in for the true maximum once multiplied by the safety
margin).  The certified bound is stored on the surface and rechecked
by the test suite and the benchmark gate against fresh exact
evaluations.

All exact evaluations go through :class:`repro.engine.Engine`, so a
shared engine amortizes model builds across ladder levels, probe
grids and methods — and any previously memoized points are free.
"""

from __future__ import annotations

import os
from typing import Any, Mapping, Optional, Sequence, Tuple, Union

import numpy as np
from numpy.polynomial import chebyshev

from ..core.rtt import QUANTILE_METHODS
from ..engine import Engine
from ..errors import ConvergenceError, ParameterError
from ..scenarios.base import Scenario
from ..scenarios.mix import MixScenario
from ..scenarios.registry import scenario_from_spec
from .lookup import QuantileSurface, SurfaceIndex

__all__ = ["GRID_LADDER", "build_surface", "build_surfaces"]

#: Grid refinement ladder as (load nodes, u nodes) per level.  The
#: Chebyshev error decays geometrically with the node count for smooth
#: surfaces, so a handful of roughly-\sqrt{2} steps spans tolerances
#: from quick-look (1e-3) to serving-grade (1e-6 and below).
GRID_LADDER: Tuple[Tuple[int, int], ...] = (
    (9, 5),
    (13, 7),
    (17, 9),
    (25, 11),
    (33, 13),
    (49, 17),
    (65, 21),
)

#: Certified bound = (worst probe-grid error) x SAFETY.  The probe grid
#: is offset from the fit nodes and several times denser, so the margin
#: covers the residual risk that the true maximum falls between probes.
SAFETY = 4.0

ScenarioLike = Union[Scenario, MixScenario]


def _resolve_scenario(scenario) -> ScenarioLike:
    if isinstance(scenario, (Scenario, MixScenario)):
        return scenario
    if isinstance(scenario, (str, os.PathLike)):
        return scenario_from_spec(scenario)
    if isinstance(scenario, Mapping):
        return Scenario.from_dict(scenario)
    raise TypeError(
        "expected a Scenario, MixScenario, preset name/path or parameter "
        f"mapping, got {type(scenario).__name__}"
    )


def _lobatto_nodes(lo: float, hi: float, count: int) -> np.ndarray:
    """Chebyshev–Gauss–Lobatto nodes mapped onto ``[lo, hi]``, ascending."""
    k = np.arange(count, dtype=float)
    reference = -np.cos(np.pi * k / (count - 1))  # -1 .. 1 inclusive
    return lo + (hi - lo) * (reference + 1.0) / 2.0


def _to_reference(values: np.ndarray, lo: float, hi: float) -> np.ndarray:
    return 2.0 * (values - lo) / (hi - lo) - 1.0


def _nines(probability: float) -> float:
    return float(-np.log10(1.0 - probability))


def _log_quantile_grid(
    engine: Engine,
    loads: np.ndarray,
    u_values: np.ndarray,
    method: str,
) -> np.ndarray:
    """``log(rtt_quantile_s)`` on the tensor grid, one stacked batch per u."""
    columns = []
    for u in u_values:
        probability = 1.0 - 10.0 ** (-float(u))
        columns.append(
            engine.rtt_quantiles(loads.tolist(), probability=probability, method=method)
        )
    grid = np.asarray(columns, dtype=float).T  # shape (len(loads), len(u))
    if not (np.isfinite(grid).all() and (grid > 0.0).all()):
        raise ConvergenceError(
            "exact quantile evaluation produced non-positive or non-finite "
            "values; the requested region is not certifiable"
        )
    return np.log(grid)


def _fit_coefficients(
    x_nodes: np.ndarray, y_nodes: np.ndarray, log_grid: np.ndarray
) -> np.ndarray:
    """Least-squares 2-D Chebyshev coefficients on the node grid."""
    degree_x = len(x_nodes) - 1
    degree_y = len(y_nodes) - 1
    mesh_x, mesh_y = np.meshgrid(x_nodes, y_nodes, indexing="ij")
    vander = chebyshev.chebvander2d(
        mesh_x.ravel(), mesh_y.ravel(), [degree_x, degree_y]
    )
    solution, _, _, _ = np.linalg.lstsq(vander, log_grid.ravel(), rcond=None)
    return solution.reshape(degree_x + 1, degree_y + 1)


def build_surface(
    scenario,
    method: str = "inversion",
    *,
    probability_lo: float = 0.99,
    probability_hi: float = 0.999999,
    load_lo: Optional[float] = None,
    load_hi: Optional[float] = None,
    tolerance: float = 1e-6,
    probe_factor: int = 3,
    engine: Optional[Engine] = None,
    grid_ladder: Sequence[Tuple[int, int]] = GRID_LADDER,
) -> QuantileSurface:
    """Fit and certify one quantile surface for (scenario, method).

    Parameters
    ----------
    scenario:
        A :class:`Scenario`/:class:`MixScenario`, a registry preset
        name or JSON path, or a parameter mapping.
    method:
        Quantile evaluation method the surface must reproduce.
    probability_lo / probability_hi:
        Quantile-level extent of the region (default: two to six
        nines, bracketing the paper's 0.99999 operating point).
    load_lo / load_hi:
        Downlink-load extent.  Defaults to the scenario's stable
        operating region: from one gamer's load (but at least 0.05,
        below which quantiles are flat) up to
        ``stable_load_ceiling(0.90)``.
    tolerance:
        Relative error bound to certify (default ``1e-6``).
    probe_factor:
        Densification of the certification grid versus the fit grid.
    engine:
        Optional shared :class:`Engine` for the exact evaluations
        (must wrap an equal scenario); one is created when omitted.
    grid_ladder:
        The (load nodes, u nodes) refinement schedule.

    Raises
    ------
    ConvergenceError
        If the ladder is exhausted without certifying ``tolerance``.
    """
    scenario = _resolve_scenario(scenario)
    if method not in QUANTILE_METHODS:
        raise ParameterError(
            f"method must be one of {QUANTILE_METHODS}; got {method!r}"
        )
    if not 0.0 < probability_lo < probability_hi < 1.0:
        raise ParameterError(
            "surface region requires 0 < probability_lo < probability_hi < 1"
        )
    if not (np.isfinite(tolerance) and tolerance > 0.0):
        raise ParameterError("tolerance must be positive and finite")
    if int(probe_factor) < 2:
        raise ParameterError("probe_factor must be at least 2")
    probe_factor = int(probe_factor)
    ladder = [(int(n_load), int(n_u)) for n_load, n_u in grid_ladder]
    if not ladder:
        raise ParameterError("grid_ladder must contain at least one grid")
    for n_load, n_u in ladder:
        if n_load < 4 or n_u < 3:
            raise ParameterError(
                "grid_ladder entries need at least 4 load and 3 probability nodes"
            )

    if load_lo is None:
        # One gamer is the smallest meaningful operating point; 0.05
        # keeps the region inside the regime the sweeps exercise.
        load_lo = max(scenario.load_for_gamers(1.0 + 1e-9), 0.05)
    load_lo = float(load_lo)
    load_hi = float(
        scenario.stable_load_ceiling(0.90) if load_hi is None else load_hi
    )
    if not 0.0 < load_lo < load_hi < 1.0:
        raise ParameterError(
            f"surface region requires 0 < load_lo < load_hi < 1; got "
            f"[{load_lo}, {load_hi}]"
        )
    if scenario.gamers_at_load(load_lo) < 1.0:
        raise ParameterError(
            f"load_lo {load_lo:.4f} corresponds to fewer than one gamer; "
            "raise it to at least scenario.load_for_gamers(1.0)"
        )

    if engine is None:
        engine = Engine(scenario, method=method)
    elif engine.scenario != scenario:
        raise ParameterError(
            "the shared engine wraps a different scenario than the surface "
            "being built"
        )

    u_lo = _nines(probability_lo)
    u_hi = _nines(probability_hi)

    exact_evaluations = 0
    best: Optional[Tuple[np.ndarray, float, Tuple[int, int], int]] = None
    for level, (n_load, n_u) in enumerate(ladder, start=1):
        load_nodes = _lobatto_nodes(load_lo, load_hi, n_load)
        u_nodes = _lobatto_nodes(u_lo, u_hi, n_u)
        log_grid = _log_quantile_grid(engine, load_nodes, u_nodes, method)
        exact_evaluations += load_nodes.size * u_nodes.size
        coef = _fit_coefficients(
            _to_reference(load_nodes, load_lo, load_hi),
            _to_reference(u_nodes, u_lo, u_hi),
            log_grid,
        )

        probe_loads = np.linspace(load_lo, load_hi, probe_factor * n_load + 1)
        probe_u = np.linspace(u_lo, u_hi, probe_factor * n_u + 1)
        exact_log = _log_quantile_grid(engine, probe_loads, probe_u, method)
        exact_evaluations += probe_loads.size * probe_u.size
        mesh_x, mesh_y = np.meshgrid(
            _to_reference(probe_loads, load_lo, load_hi),
            _to_reference(probe_u, u_lo, u_hi),
            indexing="ij",
        )
        fitted_log = chebyshev.chebval2d(mesh_x, mesh_y, coef)
        # expm1(log a - log z) is exactly (a - z) / z: the probe error
        # is measured in the relative metric the bound is stated in.
        probe_error = float(np.max(np.abs(np.expm1(fitted_log - exact_log))))
        certified = max(probe_error * SAFETY, np.finfo(float).tiny)
        if best is None or certified < best[1]:
            best = (coef, certified, (n_load, n_u), level)
        if certified <= tolerance:
            return QuantileSurface(
                scenario_key=scenario.cache_key(),
                scenario=scenario.to_dict(),
                method=method,
                load_lo=load_lo,
                load_hi=load_hi,
                probability_lo=probability_lo,
                probability_hi=probability_hi,
                coef=coef,
                certified_rel_bound=certified,
                tolerance=tolerance,
                build_info={
                    "grid": [n_load, n_u],
                    "ladder_level": level,
                    "probe_rel_error": probe_error,
                    "probe_grid": [probe_loads.size, probe_u.size],
                    "safety": SAFETY,
                    "exact_evaluations": exact_evaluations,
                },
            )

    assert best is not None
    raise ConvergenceError(
        f"could not certify relative tolerance {tolerance:g} for "
        f"{scenario.describe()!r} / {method}: best bound {best[1]:.3g} at "
        f"grid {best[2]} after {best[3]} refinement(s); loosen the "
        "tolerance or extend the grid ladder",
        iterations=best[3],
    )


def build_surfaces(
    scenario,
    methods: Union[str, Sequence[str], None] = ("inversion",),
    **kwargs: Any,
) -> SurfaceIndex:
    """Build certified surfaces for several methods of one scenario.

    ``methods`` is a sequence of method names, a single name, or
    ``"all"``/``None`` for every method in
    :data:`~repro.core.rtt.QUANTILE_METHODS`.  One shared
    :class:`Engine` serves all builds, so operating points revisited
    across methods reuse their memoized models.  Keyword arguments are
    forwarded to :func:`build_surface`.
    """
    scenario = _resolve_scenario(scenario)
    if methods is None or methods == "all":
        methods = QUANTILE_METHODS
    elif isinstance(methods, str):
        methods = (methods,)
    methods = tuple(methods)
    if not methods:
        raise ParameterError("methods must name at least one quantile method")
    engine = kwargs.pop("engine", None)
    if engine is None:
        engine = Engine(scenario)
    index = SurfaceIndex()
    for method in methods:
        index.add(build_surface(scenario, method, engine=engine, **kwargs))
    return index
