"""Persistence of certified quantile surfaces.

Surfaces are written as JSON documents with the same crash-safety and
error taxonomy as the fleet answer cache: atomic replace on write
(:func:`repro.persist.atomic_write_text`) and a typed
:class:`~repro.errors.SurfaceFormatError` on anything malformed at
load time — invalid JSON, a foreign document, version skew, a
corrupted surface entry, or a scenario whose canonical key no longer
matches the key the surface was certified under.

``load_surfaces`` accepts either one document or a directory of them
(every ``*.json`` inside), so a daemon can point ``--surfaces`` at a
directory that operators drop per-scenario files into.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path
from typing import Union

from ..errors import ParameterError, SurfaceFormatError
from ..persist import atomic_write_text
from ..scenarios.base import Scenario
from .lookup import QuantileSurface, SurfaceIndex

__all__ = [
    "SURFACE_FORMAT",
    "SURFACE_VERSION",
    "surface_filename",
    "save_surfaces",
    "load_surfaces",
]

SURFACE_FORMAT = "repro-quantile-surfaces"
SURFACE_VERSION = 1


def surface_filename(scenario_or_key) -> str:
    """Canonical per-scenario surface file name (``surfaces-<key>.json``)."""
    key = scenario_or_key
    if hasattr(key, "cache_key"):
        key = key.cache_key()
    return f"surfaces-{key}.json"


def _as_surface_list(surfaces) -> list:
    if isinstance(surfaces, QuantileSurface):
        return [surfaces]
    if isinstance(surfaces, (SurfaceIndex, Iterable)):
        result = []
        for surface in surfaces:
            if not isinstance(surface, QuantileSurface):
                raise TypeError(
                    "expected QuantileSurface items, got "
                    f"{type(surface).__name__}"
                )
            result.append(surface)
        return result
    raise TypeError(
        "expected a QuantileSurface, SurfaceIndex or iterable of surfaces, "
        f"got {type(surfaces).__name__}"
    )


def _document(surfaces: list) -> str:
    payload = {
        "format": SURFACE_FORMAT,
        "version": SURFACE_VERSION,
        "surfaces": [surface.to_dict() for surface in surfaces],
    }
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def save_surfaces(surfaces, path: Union[str, Path]) -> int:
    """Persist surfaces to ``path`` atomically; returns the count written.

    ``path`` names either a single document (all surfaces in one file)
    or an existing directory, in which case surfaces are grouped per
    scenario into :func:`surface_filename` files — the layout
    ``load_surfaces`` and the daemon's ``--surfaces`` flag consume.
    """
    surfaces = _as_surface_list(surfaces)
    path = Path(path)
    if path.is_dir():
        grouped: dict = {}
        for surface in surfaces:
            grouped.setdefault(surface.scenario_key, []).append(surface)
        for key, group in grouped.items():
            atomic_write_text(path / surface_filename(key), _document(group))
    else:
        atomic_write_text(path, _document(surfaces))
    return len(surfaces)


def _load_document(path: Path, index: SurfaceIndex) -> int:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SurfaceFormatError(
            f"cannot read surface file {path}: {exc}", path=str(path)
        ) from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SurfaceFormatError(
            f"surface file {path} is not valid JSON: {exc}", path=str(path)
        ) from exc
    if not isinstance(data, dict):
        raise SurfaceFormatError(
            f"surface file {path} must contain a JSON object at the top level",
            path=str(path),
        )
    if data.get("format") != SURFACE_FORMAT:
        raise SurfaceFormatError(
            f"surface file {path} is not a {SURFACE_FORMAT!r} document "
            f"(format={data.get('format')!r})",
            path=str(path),
            key="format",
        )
    version = data.get("version")
    if version != SURFACE_VERSION:
        raise SurfaceFormatError(
            f"surface file {path} has format version {version!r}; this "
            f"library reads version {SURFACE_VERSION}",
            path=str(path),
            key="version",
        )
    entries = data.get("surfaces")
    if not isinstance(entries, list):
        raise SurfaceFormatError(
            f"surface file {path} must carry a 'surfaces' list",
            path=str(path),
            key="surfaces",
        )
    count = 0
    for position, entry in enumerate(entries):
        try:
            surface = QuantileSurface.from_dict(entry)
        except ParameterError as exc:
            raise SurfaceFormatError(
                f"surface file {path} entry {position} is corrupt: {exc}",
                path=str(path),
                key=f"surfaces[{position}]",
            ) from exc
        # The stored key must still be the canonical key of the stored
        # scenario: a hand-edited scenario would otherwise serve under
        # the wrong shard with a bound certified for different physics.
        try:
            actual_key = Scenario.from_dict(surface.scenario).cache_key()
        except ParameterError as exc:
            raise SurfaceFormatError(
                f"surface file {path} entry {position} carries an invalid "
                f"scenario: {exc}",
                path=str(path),
                key=f"surfaces[{position}]",
            ) from exc
        if actual_key != surface.scenario_key:
            raise SurfaceFormatError(
                f"surface file {path} entry {position} was certified for "
                f"scenario key {surface.scenario_key} but its scenario "
                f"hashes to {actual_key}; the file is inconsistent",
                path=str(path),
                key=surface.scenario_key,
            )
        index.add(surface)
        count += 1
    return count


def load_surfaces(path: Union[str, Path]) -> SurfaceIndex:
    """Load certified surfaces from a document or a directory of them.

    Raises :class:`~repro.errors.SurfaceFormatError` on any malformed,
    foreign or version-skewed file — a directory load fails as a whole
    rather than silently serving a partial set.
    """
    path = Path(path)
    index = SurfaceIndex()
    if path.is_dir():
        for child in sorted(path.glob("*.json")):
            _load_document(child, index)
    else:
        _load_document(path, index)
    return index
