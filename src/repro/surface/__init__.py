"""Certified quantile surfaces: the O(1) warm tier of the serving stack.

The fourth serving tier after the answer cache, the stacked batch path
and the distributed fan-out: per-scenario Chebyshev surfaces of the
RTT quantile over the stable (load, probability) operating region,
built against the exact stacked path with a *certified* relative
error bound (:mod:`~repro.surface.builder`), persisted as atomic JSON
(:mod:`~repro.surface.store`) and probed in O(1) at serve time
(:mod:`~repro.surface.lookup`).

See :meth:`repro.fleet.Fleet.attach_surfaces`,
:meth:`repro.engine.Engine.build_surface` and the ``fps-ping surface``
CLI for the integration points.
"""

from .builder import GRID_LADDER, build_surface, build_surfaces
from .lookup import QuantileSurface, SurfaceIndex
from .store import (
    SURFACE_FORMAT,
    SURFACE_VERSION,
    load_surfaces,
    save_surfaces,
    surface_filename,
)

__all__ = [
    "GRID_LADDER",
    "QuantileSurface",
    "SurfaceIndex",
    "SURFACE_FORMAT",
    "SURFACE_VERSION",
    "build_surface",
    "build_surfaces",
    "load_surfaces",
    "save_surfaces",
    "surface_filename",
]
