"""O(1) certified-surface lookups for steady-state serving.

A :class:`QuantileSurface` is a tensor-product Chebyshev fit of the
**logarithm** of the RTT quantile over a rectangle of the scenario's
stable operating region, in the coordinates

* ``load`` — downlink load on the aggregation link, and
* ``u = -log10(1 - probability)`` — the "number of nines" of the
  quantile level, which turns the geometric spacing of interesting
  probabilities (0.99, 0.999, … 0.999999) into a uniform axis.

The fit is produced by :mod:`repro.surface.builder`, which *certifies*
a relative error bound against the exact stacked inversion before a
surface is ever handed out: every lookup inside the region is
guaranteed within ``certified_rel_bound`` of the exact answer, and the
bound travels with the surface (including through persistence).

A :class:`SurfaceIndex` holds surfaces keyed by
``(scenario.cache_key(), method)`` — the same key namespace the fleet
uses for sharding — and implements the serving-side triage
(:meth:`SurfaceIndex.probe`): *hit* when a surface answers, *miss*
when no surface exists for the key, *fallback* when one exists but
must not answer (exact floats requested, point out of region, or the
certified bound looser than the caller tolerates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from ..errors import ParameterError

__all__ = ["QuantileSurface", "SurfaceIndex"]


def _nines(probability: float) -> float:
    """The ``u = -log10(1 - p)`` axis coordinate of a quantile level."""
    return -math.log10(1.0 - probability)


def _chebyshev_t(t: float, count: int) -> np.ndarray:
    """``[T_0(t), …, T_{count-1}(t)]`` by the three-term recurrence.

    A scalar ``numpy.polynomial.chebyshev.chebval2d`` call costs ~80 µs
    in array bookkeeping; building the T-vectors in plain floats and
    contracting them against the coefficient matrix with two dot
    products evaluates the same expansion (to machine precision) in
    ~10 µs — the difference between a 30x and a 200x+ speedup over the
    exact path.
    """
    previous, current = 1.0, t
    values = [1.0, t]
    for _ in range(count - 2):
        previous, current = current, 2.0 * t * current - previous
        values.append(current)
    return np.asarray(values[:count])


@dataclass(frozen=True)
class QuantileSurface:
    """One certified Chebyshev surface: (load, probability) -> RTT (s).

    Instances are built by :func:`repro.surface.builder.build_surface`
    or deserialized by :mod:`repro.surface.store`; constructing one by
    hand bypasses certification and is only sensible in tests.

    Attributes
    ----------
    scenario_key:
        ``scenario.cache_key()`` of the scenario the surface was fit
        for — the fleet's sharding/cache key namespace.
    scenario:
        Plain-dictionary form of that scenario (round-trips through
        :meth:`repro.scenarios.base.Scenario.from_dict`, including
        multi-server mixes).
    method:
        Quantile evaluation method the surface reproduces.
    load_lo / load_hi:
        Downlink-load extent of the certified region.
    probability_lo / probability_hi:
        Quantile-level extent of the certified region.
    coef:
        2-D Chebyshev coefficient matrix of ``log(rtt_quantile_s)``
        over the mapped ``[-1, 1]^2`` domain (load axis first).
    certified_rel_bound:
        Certified relative error bound versus the exact stacked path;
        every in-region lookup is within this bound.
    tolerance:
        The tolerance the builder was asked to certify (the bound is
        at most this).
    build_info:
        Free-form provenance from the builder (grid shape, probe
        error, …); not consulted at lookup time.
    """

    scenario_key: str
    scenario: Mapping[str, Any]
    method: str
    load_lo: float
    load_hi: float
    probability_lo: float
    probability_hi: float
    coef: np.ndarray
    certified_rel_bound: float
    tolerance: float
    build_info: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        coef = np.asarray(self.coef, dtype=float)
        if coef.ndim != 2 or coef.size == 0:
            raise ParameterError(
                "surface coefficients must form a non-empty 2-D matrix"
            )
        if not np.isfinite(coef).all():
            raise ParameterError("surface coefficients must be finite")
        object.__setattr__(self, "coef", coef)
        if not self.load_lo < self.load_hi:
            raise ParameterError("surface requires load_lo < load_hi")
        if not 0.0 < self.load_lo:
            raise ParameterError("surface loads must be positive")
        if not self.load_hi < 1.0:
            raise ParameterError("surface loads must stay below 1 (stability)")
        if not 0.0 < self.probability_lo < self.probability_hi < 1.0:
            raise ParameterError(
                "surface requires 0 < probability_lo < probability_hi < 1"
            )
        if not (
            math.isfinite(self.certified_rel_bound)
            and self.certified_rel_bound > 0.0
        ):
            raise ParameterError("certified_rel_bound must be positive and finite")
        if not (math.isfinite(self.tolerance) and self.tolerance > 0.0):
            raise ParameterError("tolerance must be positive and finite")

    # ------------------------------------------------------------------
    # Region membership and evaluation
    # ------------------------------------------------------------------
    def covers(self, downlink_load: float, probability: float) -> bool:
        """Whether an operating point lies inside the certified region."""
        return (
            self.load_lo <= downlink_load <= self.load_hi
            and self.probability_lo <= probability <= self.probability_hi
        )

    def lookup(self, downlink_load: float, probability: float) -> float:
        """RTT quantile (seconds) by surface evaluation — O(1).

        Raises :class:`~repro.errors.ParameterError` outside the
        certified region; the bound only holds inside it, so serving
        layers must fall back to the exact path there instead.
        """
        if not self.covers(downlink_load, probability):
            raise ParameterError(
                f"operating point (load={downlink_load!r}, "
                f"probability={probability!r}) lies outside the certified "
                f"region [{self.load_lo}, {self.load_hi}] x "
                f"[{self.probability_lo}, {self.probability_hi}]"
            )
        x = 2.0 * (downlink_load - self.load_lo) / (self.load_hi - self.load_lo) - 1.0
        u_lo = _nines(self.probability_lo)
        u_hi = _nines(self.probability_hi)
        y = 2.0 * (_nines(probability) - u_lo) / (u_hi - u_lo) - 1.0
        t_load = _chebyshev_t(x, self.coef.shape[0])
        t_level = _chebyshev_t(y, self.coef.shape[1])
        return float(math.exp(t_load @ self.coef @ t_level))

    def invert_load(
        self,
        rtt_budget_s: float,
        probability: float,
        *,
        load_cap: Optional[float] = None,
        xtol: float = 1e-6,
    ) -> Optional[float]:
        """Largest load whose surface RTT stays within ``rtt_budget_s``.

        Inverts the monotone load→quantile relation at a fixed quantile
        level by Brent's method on the O(1) :meth:`lookup` — the
        admission-control fast path: certified, and zero evaluation
        plans executed.  ``load_cap`` (typically the scenario's stable
        load ceiling) truncates the search above.

        Returns ``None`` whenever the surface cannot *certify* the
        answer — the level is outside the certified region, or the
        capacity bound lies at or beyond a region edge where the true
        root may escape the region — in which case the caller must fall
        back to the exact path.  The one edge the surface may still
        answer is saturation at the cap: when the cap itself lies
        in-region and its RTT meets the budget, the capacity *is* the
        cap.
        """
        if not (
            math.isfinite(rtt_budget_s) and rtt_budget_s > 0.0
        ):
            raise ParameterError("rtt_budget_s must be positive and finite")
        if not self.probability_lo <= probability <= self.probability_hi:
            return None
        hi = self.load_hi if load_cap is None else min(self.load_hi, float(load_cap))
        lo = self.load_lo
        if not lo < hi:
            return None
        excess_lo = self.lookup(lo, probability) - rtt_budget_s
        excess_hi = self.lookup(hi, probability) - rtt_budget_s
        if excess_lo >= 0.0:
            # Over budget already at the region's low edge: the true
            # capacity (if any) lies below load_lo, out of region.
            return None
        if excess_hi <= 0.0:
            # Within budget all the way up to ``hi``.  Certify only the
            # saturated case where ``hi`` is the caller's cap (not the
            # region edge, beyond which the true capacity may escape).
            if load_cap is not None and float(load_cap) <= self.load_hi:
                return hi
            return None
        from scipy import optimize  # deferred: keep module import light

        def excess(load: float) -> float:
            return self.lookup(float(load), probability) - rtt_budget_s

        return float(optimize.brentq(excess, lo, hi, xtol=xtol))

    # ------------------------------------------------------------------
    # Serialization (consumed by repro.surface.store)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dictionary form (floats round-trip exactly)."""
        return {
            "scenario_key": self.scenario_key,
            "scenario": dict(self.scenario),
            "method": self.method,
            "load_lo": self.load_lo,
            "load_hi": self.load_hi,
            "probability_lo": self.probability_lo,
            "probability_hi": self.probability_hi,
            "coef": [[float(c) for c in row] for row in self.coef],
            "certified_rel_bound": self.certified_rel_bound,
            "tolerance": self.tolerance,
            "build_info": dict(self.build_info),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuantileSurface":
        """Inverse of :meth:`to_dict` (validates on construction)."""
        if not isinstance(data, Mapping):
            raise ParameterError("a surface entry must be an object")
        try:
            return cls(
                scenario_key=str(data["scenario_key"]),
                scenario=dict(data["scenario"]),
                method=str(data["method"]),
                load_lo=float(data["load_lo"]),
                load_hi=float(data["load_hi"]),
                probability_lo=float(data["probability_lo"]),
                probability_hi=float(data["probability_hi"]),
                coef=np.asarray(data["coef"], dtype=float),
                certified_rel_bound=float(data["certified_rel_bound"]),
                tolerance=float(data["tolerance"]),
                build_info=dict(data.get("build_info", {})),
            )
        except KeyError as exc:
            raise ParameterError(f"surface entry is missing field {exc}") from exc
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ParameterError):
                raise
            raise ParameterError(f"surface entry is malformed: {exc}") from exc


class SurfaceIndex:
    """Certified surfaces keyed by ``(scenario_key, method)``.

    The collection type every consumer passes around: the builder
    returns one, the store loads/saves one, the fleet probes one.
    """

    def __init__(self, surfaces: Optional[Mapping[Tuple[str, str], QuantileSurface]] = None) -> None:
        self._surfaces: Dict[Tuple[str, str], QuantileSurface] = {}
        if surfaces:
            for surface in surfaces.values():
                self.add(surface)

    def __len__(self) -> int:
        return len(self._surfaces)

    def __iter__(self) -> Iterator[QuantileSurface]:
        return iter(self._surfaces.values())

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._surfaces

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        keys = sorted(self._surfaces)
        return f"SurfaceIndex({keys!r})"

    def add(self, surface: QuantileSurface) -> None:
        """Insert (or replace) the surface for its (scenario, method)."""
        if not isinstance(surface, QuantileSurface):
            raise TypeError(
                f"expected a QuantileSurface, got {type(surface).__name__}"
            )
        self._surfaces[(surface.scenario_key, surface.method)] = surface

    def get(self, scenario_key: str, method: str) -> Optional[QuantileSurface]:
        """The surface for a (scenario key, method), or ``None``."""
        return self._surfaces.get((scenario_key, method))

    def scenario_keys(self) -> Tuple[str, ...]:
        """The distinct scenario keys with at least one surface."""
        return tuple(sorted({key for key, _ in self._surfaces}))

    # ------------------------------------------------------------------
    # Serving triage
    # ------------------------------------------------------------------
    def probe(
        self,
        scenario_key: str,
        method: str,
        downlink_load: float,
        probability: float,
        *,
        exact: bool = False,
        max_bound: Optional[float] = None,
    ) -> Tuple[Optional[float], str]:
        """Try to answer a resolved operating point from a surface.

        Returns ``(value_s, outcome)`` where the outcome is

        * ``"hit"`` — the surface answered (``value_s`` is the RTT in
          seconds, certified within the surface's stored bound);
        * ``"miss"`` — no surface is indexed for this (scenario,
          method); the caller proceeds exactly as without surfaces;
        * ``"fallback"`` — a surface exists but must not answer: the
          caller requested exact floats, the point is outside the
          certified region, or the certified bound is looser than
          ``max_bound``.  ``value_s`` is ``None`` for both non-hits.
        """
        surface = self._surfaces.get((scenario_key, method))
        if surface is None:
            return None, "miss"
        if (
            exact
            or (max_bound is not None and surface.certified_rel_bound > max_bound)
            or not surface.covers(downlink_load, probability)
        ):
            return None, "fallback"
        return surface.lookup(downlink_load, probability), "hit"
