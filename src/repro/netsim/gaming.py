"""End-to-end gaming session simulation and ping measurement.

:class:`GamingSimulation` wires the traffic sources of a game session
into the Figure 2 access network, runs the discrete-event simulation and
collects the delays the paper reasons about:

* per-packet upstream delay (client departure to server arrival),
* per-packet downstream delay (server departure to client arrival),
* the round-trip "ping" time, defined — exactly as in the paper's
  introduction — as the sum of the upstream delay of the gamer's most
  recent command packet and the downstream delay of the server update
  that reaches the gamer.

The simulation is used as an independent check of the analytical model
(validation benchmark) and for the FIFO / priority / WFQ comparison.

:class:`MixGamingSimulation` is the multi-server sibling: several game
servers — one per :class:`~repro.scenarios.mix.MixScenario` component —
share the reserved aggregation pipe, each driving its own slice of the
client population with its own tick interval and packet sizes.  Only the
tagged component's gamers are measured, matching the mix model, which
serves the tagged flow's RTT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..distributions import Distribution
from ..errors import ParameterError
from ..units import require_non_negative, require_positive
from .metrics import DelayRecorder
from .simulator import SimPacket, Simulator
from .sources import BackgroundDataSource, GamingClientSource, GamingServerSource
from .topology import AccessNetwork, AccessNetworkConfig

__all__ = ["GamingWorkload", "GamingSimulation", "MixGamingSimulation"]


@dataclass(frozen=True)
class GamingWorkload:
    """Traffic parameters of the simulated game session.

    The defaults correspond to the Section 4 scenario: 80-byte client
    packets and 125-byte server packets every 40 ms.
    """

    client_packet_bytes: float = 80.0
    server_packet_bytes: float = 125.0
    tick_interval_s: float = 0.040
    server_packet_size_distribution: Optional[Distribution] = None
    background_rate_bps: float = 0.0
    background_packet_bytes: float = 1500.0

    def __post_init__(self) -> None:
        require_positive(self.client_packet_bytes, "client_packet_bytes")
        require_positive(self.server_packet_bytes, "server_packet_bytes")
        require_positive(self.tick_interval_s, "tick_interval_s")
        if self.background_rate_bps < 0.0:
            raise ParameterError("background_rate_bps must be >= 0")

    @classmethod
    def from_scenario(
        cls,
        scenario,
        background_rate_bps: float = 0.0,
        server_packet_size_distribution: Optional[Distribution] = None,
    ) -> "GamingWorkload":
        """Workload matching a :class:`~repro.scenarios.base.Scenario`."""
        return cls(
            client_packet_bytes=scenario.client_packet_bytes,
            server_packet_bytes=scenario.server_packet_bytes,
            tick_interval_s=scenario.tick_interval_s,
            server_packet_size_distribution=server_packet_size_distribution,
            background_rate_bps=background_rate_bps,
        )


class _GamingSessionBase:
    """Shared delivery hooks and run loop of the simulated sessions.

    Subclasses wire their sources in ``__init__`` (exposing them through
    :meth:`_all_sources`) and may narrow :meth:`_measured` to the client
    ids whose delays the session reports.
    """

    sim: Simulator
    network: AccessNetwork
    delays: DelayRecorder
    _last_upstream_delay: Dict[int, float]

    def _all_sources(self) -> Iterable:
        raise NotImplementedError

    def _measured(self, client_id: int) -> bool:
        return True

    # ------------------------------------------------------------------
    # Delivery hooks
    # ------------------------------------------------------------------
    def _server_receive(self, packet: SimPacket) -> None:
        if packet.traffic_class != "gaming" or packet.direction != "up":
            return
        if not self._measured(packet.client_id):
            return
        delay = self.sim.now - packet.created_at
        self.delays.record("upstream", delay)
        self.delays.record(
            "upstream_aggregation_queueing",
            self.network.uplink_aggregation.queueing_delay_of(packet),
        )
        self._last_upstream_delay[packet.client_id] = delay

    def _client_receive(self, packet: SimPacket) -> None:
        if packet.traffic_class != "gaming" or packet.direction != "down":
            return
        if not self._measured(packet.client_id):
            return
        delay = self.sim.now - packet.created_at
        self.delays.record("downstream", delay)
        self.delays.record(
            "downstream_aggregation_queueing",
            self.network.downlink_aggregation.queueing_delay_of(packet),
        )
        upstream_delay = self._last_upstream_delay.get(packet.client_id)
        if upstream_delay is not None:
            self.delays.record("rtt", upstream_delay + delay)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, duration_s: float, warmup_s: float = 0.0) -> DelayRecorder:
        """Run the session for ``duration_s`` simulated seconds.

        ``warmup_s`` seconds are simulated first and their measurements
        discarded, so the reported delays describe the steady state.
        """
        require_positive(duration_s, "duration_s")
        require_non_negative(warmup_s, "warmup_s")
        for source in self._all_sources():
            source.start()
        if warmup_s > 0.0:
            self.sim.run_until(warmup_s)
            self.delays = DelayRecorder()
            self._last_upstream_delay.clear()
        self.sim.run_until(warmup_s + duration_s)
        return self.delays


class GamingSimulation(_GamingSessionBase):
    """A complete simulated gaming session over the access network."""

    def __init__(
        self,
        config: AccessNetworkConfig,
        workload: GamingWorkload,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config
        self.workload = workload
        self.sim = Simulator(seed=seed)
        self.delays = DelayRecorder()
        self._last_upstream_delay: Dict[int, float] = {}

        self.network = AccessNetwork(
            self.sim,
            config,
            on_server_receive=self._server_receive,
            on_client_receive=self._client_receive,
        )

        self.client_sources = [
            GamingClientSource(
                self.sim,
                client_id=client_id,
                packet_bytes=workload.client_packet_bytes,
                interval_s=workload.tick_interval_s,
                target=self.network.client_send,
            )
            for client_id in range(config.num_clients)
        ]
        self.server_source = GamingServerSource(
            self.sim,
            num_clients=config.num_clients,
            packet_bytes=workload.server_packet_bytes,
            tick_interval_s=workload.tick_interval_s,
            target=self.network.server_send,
            packet_size_distribution=workload.server_packet_size_distribution,
        )
        self.background_sources = []
        if workload.background_rate_bps > 0.0:
            self.background_sources.append(
                BackgroundDataSource(
                    self.sim,
                    mean_rate_bps=workload.background_rate_bps,
                    packet_bytes=workload.background_packet_bytes,
                    target=self.network.server_send,
                    direction="down",
                )
            )
            self.background_sources.append(
                BackgroundDataSource(
                    self.sim,
                    mean_rate_bps=workload.background_rate_bps,
                    packet_bytes=workload.background_packet_bytes,
                    target=self.network.uplink_aggregation.send,
                    direction="up",
                )
            )

    @classmethod
    def from_scenario(
        cls,
        scenario,
        num_clients: int,
        *,
        scheduler: str = "fifo",
        gaming_weight: float = 0.5,
        background_rate_bps: float = 0.0,
        server_packet_size_distribution: Optional[Distribution] = None,
        seed: Optional[int] = None,
    ) -> "GamingSimulation":
        """Build the simulated session of a :class:`~repro.scenarios.base.Scenario`.

        This is the discrete-event counterpart of
        :meth:`Scenario.model_for_gamers`: same access rates, packet
        sizes and tick interval, ``num_clients`` simulated gamers.
        """
        server_processing_s = getattr(scenario, "server_processing_s", 0.0)
        if server_processing_s > 0.0:
            raise ParameterError(
                "the simulator does not model server_processing_s yet; "
                "the simulated RTT would silently undershoot the analytical "
                "model — use a scenario with server_processing_s=0"
            )
        config = AccessNetworkConfig.from_scenario(
            scenario, num_clients=num_clients, scheduler=scheduler,
            gaming_weight=gaming_weight,
        )
        workload = GamingWorkload.from_scenario(
            scenario,
            background_rate_bps=background_rate_bps,
            server_packet_size_distribution=server_packet_size_distribution,
        )
        return cls(config, workload, seed=seed)

    def _all_sources(self) -> Iterable:
        return [*self.client_sources, self.server_source, *self.background_sources]

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def downlink_load(self) -> float:
        """Offered gaming load on the downstream aggregation link."""
        return (
            8.0
            * self.config.num_clients
            * self.workload.server_packet_bytes
            / (self.workload.tick_interval_s * self.config.aggregation_rate_bps)
        )

    @property
    def uplink_load(self) -> float:
        """Offered gaming load on the upstream aggregation link."""
        return (
            8.0
            * self.config.num_clients
            * self.workload.client_packet_bytes
            / (self.workload.tick_interval_s * self.config.aggregation_rate_bps)
        )


def _split_population(weights: Sequence[float], total: int) -> List[int]:
    """Largest-remainder split of ``total`` clients over flow weights.

    Every flow must end up with at least one client — a flow that rounds
    to zero would silently drop its load from the shared pipe.
    """
    raw = [float(weight) * total for weight in weights]
    counts = [int(math.floor(x)) for x in raw]
    leftover = total - sum(counts)
    by_remainder = sorted(
        range(len(raw)), key=lambda i: (raw[i] - counts[i], -i), reverse=True
    )
    for index in by_remainder[:leftover]:
        counts[index] += 1
    if any(count < 1 for count in counts):
        raise ParameterError(
            f"{total} clients cannot cover all {len(weights)} mix flows "
            "with at least one gamer each; raise num_clients (or the load)"
        )
    return counts


class MixGamingSimulation(_GamingSessionBase):
    """A simulated multi-server session over the shared reserved pipe.

    One :class:`~repro.netsim.sources.GamingServerSource` per mix
    component drives its own slice of the client population — its own
    tick interval, packet sizes and access rates — while every flow's
    traffic shares the two aggregation links.  The total population is
    split over the flows by largest remainder on the mix weights, and
    only the **tagged** component's gamers are measured: the recorded
    upstream / downstream / ping delays are the direct discrete-event
    counterpart of :meth:`MixScenario.model_for_gamers`.
    """

    def __init__(
        self,
        mix,
        num_clients: int,
        *,
        scheduler: str = "fifo",
        gaming_weight: float = 0.5,
        background_rate_bps: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if num_clients < 1:
            raise ParameterError("num_clients must be at least 1")
        if background_rate_bps < 0.0:
            raise ParameterError("background_rate_bps must be >= 0")
        tagged = mix.tagged_component.scenario
        if tagged.server_processing_s > 0.0:
            raise ParameterError(
                "the simulator does not model server_processing_s yet; "
                "the simulated RTT would silently undershoot the analytical "
                "model — use a tagged component with server_processing_s=0"
            )
        self.mix = mix
        self.sim = Simulator(seed=seed)
        self.delays = DelayRecorder()
        self._last_upstream_delay: Dict[int, float] = {}

        counts = _split_population(mix.weights(), int(num_clients))
        self.flow_counts: Tuple[int, ...] = tuple(counts)
        flow_ids: List[List[int]] = []
        next_id = 0
        for count in counts:
            flow_ids.append(list(range(next_id, next_id + count)))
            next_id += count
        self.flow_client_ids: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(ids) for ids in flow_ids
        )
        self._tagged_ids = frozenset(flow_ids[mix.tagged])

        # The shared pipe and the tagged component's path parameters set
        # the network defaults; other flows override their clients'
        # access rates below.
        self.config = AccessNetworkConfig(
            num_clients=int(num_clients),
            access_uplink_bps=tagged.access_uplink_bps,
            access_downlink_bps=tagged.access_downlink_bps,
            aggregation_rate_bps=mix.aggregation_rate_bps,
            propagation_delay_s=tagged.propagation_delay_s,
            scheduler=scheduler,
            gaming_weight=gaming_weight,
        )
        uplink_rates: Dict[int, float] = {}
        downlink_rates: Dict[int, float] = {}
        for component, ids in zip(mix.components, flow_ids):
            scenario = component.scenario
            for client_id in ids:
                uplink_rates[client_id] = scenario.access_uplink_bps
                downlink_rates[client_id] = scenario.access_downlink_bps
        self.network = AccessNetwork(
            self.sim,
            self.config,
            on_server_receive=self._server_receive,
            on_client_receive=self._client_receive,
            uplink_rates=uplink_rates,
            downlink_rates=downlink_rates,
        )

        self.client_sources = [
            GamingClientSource(
                self.sim,
                client_id=client_id,
                packet_bytes=component.scenario.client_packet_bytes,
                interval_s=component.scenario.tick_interval_s,
                target=self.network.client_send,
            )
            for component, ids in zip(mix.components, flow_ids)
            for client_id in ids
        ]
        self.server_sources = [
            GamingServerSource(
                self.sim,
                num_clients=len(ids),
                packet_bytes=component.scenario.server_packet_bytes,
                tick_interval_s=component.scenario.tick_interval_s,
                target=self.network.server_send,
                client_ids=ids,
            )
            for component, ids in zip(mix.components, flow_ids)
        ]
        self.background_sources = []
        if background_rate_bps > 0.0:
            self.background_sources.append(
                BackgroundDataSource(
                    self.sim,
                    mean_rate_bps=background_rate_bps,
                    packet_bytes=1500.0,
                    target=self.network.server_send,
                    direction="down",
                )
            )
            self.background_sources.append(
                BackgroundDataSource(
                    self.sim,
                    mean_rate_bps=background_rate_bps,
                    packet_bytes=1500.0,
                    target=self.network.uplink_aggregation.send,
                    direction="up",
                )
            )

    @classmethod
    def from_mix(
        cls,
        mix,
        num_clients: int,
        *,
        scheduler: str = "fifo",
        gaming_weight: float = 0.5,
        background_rate_bps: float = 0.0,
        seed: Optional[int] = None,
    ) -> "MixGamingSimulation":
        """Alias constructor mirroring :meth:`GamingSimulation.from_scenario`."""
        return cls(
            mix,
            num_clients,
            scheduler=scheduler,
            gaming_weight=gaming_weight,
            background_rate_bps=background_rate_bps,
            seed=seed,
        )

    def _all_sources(self) -> Iterable:
        return [*self.client_sources, *self.server_sources, *self.background_sources]

    def _measured(self, client_id: int) -> bool:
        return client_id in self._tagged_ids

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def downlink_load(self) -> float:
        """Offered gaming load on the downstream aggregation link."""
        return sum(
            8.0 * count * component.scenario.server_packet_bytes
            / (component.scenario.tick_interval_s * self.config.aggregation_rate_bps)
            for component, count in zip(self.mix.components, self.flow_counts)
        )

    @property
    def uplink_load(self) -> float:
        """Offered gaming load on the upstream aggregation link."""
        return sum(
            8.0 * count * component.scenario.client_packet_bytes
            / (component.scenario.tick_interval_s * self.config.aggregation_rate_bps)
            for component, count in zip(self.mix.components, self.flow_counts)
        )
