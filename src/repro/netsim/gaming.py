"""End-to-end gaming session simulation and ping measurement.

:class:`GamingSimulation` wires the traffic sources of a game session
into the Figure 2 access network, runs the discrete-event simulation and
collects the delays the paper reasons about:

* per-packet upstream delay (client departure to server arrival),
* per-packet downstream delay (server departure to client arrival),
* the round-trip "ping" time, defined — exactly as in the paper's
  introduction — as the sum of the upstream delay of the gamer's most
  recent command packet and the downstream delay of the server update
  that reaches the gamer.

The simulation is used as an independent check of the analytical model
(validation benchmark) and for the FIFO / priority / WFQ comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..distributions import Distribution
from ..errors import ParameterError
from ..units import require_positive
from .metrics import DelayRecorder
from .simulator import SimPacket, Simulator
from .sources import BackgroundDataSource, GamingClientSource, GamingServerSource
from .topology import AccessNetwork, AccessNetworkConfig

__all__ = ["GamingWorkload", "GamingSimulation"]


@dataclass(frozen=True)
class GamingWorkload:
    """Traffic parameters of the simulated game session.

    The defaults correspond to the Section 4 scenario: 80-byte client
    packets and 125-byte server packets every 40 ms.
    """

    client_packet_bytes: float = 80.0
    server_packet_bytes: float = 125.0
    tick_interval_s: float = 0.040
    server_packet_size_distribution: Optional[Distribution] = None
    background_rate_bps: float = 0.0
    background_packet_bytes: float = 1500.0

    def __post_init__(self) -> None:
        require_positive(self.client_packet_bytes, "client_packet_bytes")
        require_positive(self.server_packet_bytes, "server_packet_bytes")
        require_positive(self.tick_interval_s, "tick_interval_s")
        if self.background_rate_bps < 0.0:
            raise ParameterError("background_rate_bps must be >= 0")

    @classmethod
    def from_scenario(
        cls,
        scenario,
        background_rate_bps: float = 0.0,
        server_packet_size_distribution: Optional[Distribution] = None,
    ) -> "GamingWorkload":
        """Workload matching a :class:`~repro.scenarios.base.Scenario`."""
        return cls(
            client_packet_bytes=scenario.client_packet_bytes,
            server_packet_bytes=scenario.server_packet_bytes,
            tick_interval_s=scenario.tick_interval_s,
            server_packet_size_distribution=server_packet_size_distribution,
            background_rate_bps=background_rate_bps,
        )


class GamingSimulation:
    """A complete simulated gaming session over the access network."""

    def __init__(
        self,
        config: AccessNetworkConfig,
        workload: GamingWorkload,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config
        self.workload = workload
        self.sim = Simulator(seed=seed)
        self.delays = DelayRecorder()
        self._last_upstream_delay: Dict[int, float] = {}

        self.network = AccessNetwork(
            self.sim,
            config,
            on_server_receive=self._server_receive,
            on_client_receive=self._client_receive,
        )

        self.client_sources = [
            GamingClientSource(
                self.sim,
                client_id=client_id,
                packet_bytes=workload.client_packet_bytes,
                interval_s=workload.tick_interval_s,
                target=self.network.client_send,
            )
            for client_id in range(config.num_clients)
        ]
        self.server_source = GamingServerSource(
            self.sim,
            num_clients=config.num_clients,
            packet_bytes=workload.server_packet_bytes,
            tick_interval_s=workload.tick_interval_s,
            target=self.network.server_send,
            packet_size_distribution=workload.server_packet_size_distribution,
        )
        self.background_sources = []
        if workload.background_rate_bps > 0.0:
            self.background_sources.append(
                BackgroundDataSource(
                    self.sim,
                    mean_rate_bps=workload.background_rate_bps,
                    packet_bytes=workload.background_packet_bytes,
                    target=self.network.server_send,
                    direction="down",
                )
            )
            self.background_sources.append(
                BackgroundDataSource(
                    self.sim,
                    mean_rate_bps=workload.background_rate_bps,
                    packet_bytes=workload.background_packet_bytes,
                    target=self.network.uplink_aggregation.send,
                    direction="up",
                )
            )

    @classmethod
    def from_scenario(
        cls,
        scenario,
        num_clients: int,
        *,
        scheduler: str = "fifo",
        gaming_weight: float = 0.5,
        background_rate_bps: float = 0.0,
        server_packet_size_distribution: Optional[Distribution] = None,
        seed: Optional[int] = None,
    ) -> "GamingSimulation":
        """Build the simulated session of a :class:`~repro.scenarios.base.Scenario`.

        This is the discrete-event counterpart of
        :meth:`Scenario.model_for_gamers`: same access rates, packet
        sizes and tick interval, ``num_clients`` simulated gamers.
        """
        server_processing_s = getattr(scenario, "server_processing_s", 0.0)
        if server_processing_s > 0.0:
            raise ParameterError(
                "the simulator does not model server_processing_s yet; "
                "the simulated RTT would silently undershoot the analytical "
                "model — use a scenario with server_processing_s=0"
            )
        config = AccessNetworkConfig.from_scenario(
            scenario, num_clients=num_clients, scheduler=scheduler,
            gaming_weight=gaming_weight,
        )
        workload = GamingWorkload.from_scenario(
            scenario,
            background_rate_bps=background_rate_bps,
            server_packet_size_distribution=server_packet_size_distribution,
        )
        return cls(config, workload, seed=seed)

    # ------------------------------------------------------------------
    # Delivery hooks
    # ------------------------------------------------------------------
    def _server_receive(self, packet: SimPacket) -> None:
        if packet.traffic_class != "gaming" or packet.direction != "up":
            return
        delay = self.sim.now - packet.created_at
        self.delays.record("upstream", delay)
        self.delays.record(
            "upstream_aggregation_queueing",
            self.network.uplink_aggregation.queueing_delay_of(packet),
        )
        self._last_upstream_delay[packet.client_id] = delay

    def _client_receive(self, packet: SimPacket) -> None:
        if packet.traffic_class != "gaming" or packet.direction != "down":
            return
        delay = self.sim.now - packet.created_at
        self.delays.record("downstream", delay)
        self.delays.record(
            "downstream_aggregation_queueing",
            self.network.downlink_aggregation.queueing_delay_of(packet),
        )
        upstream_delay = self._last_upstream_delay.get(packet.client_id)
        if upstream_delay is not None:
            self.delays.record("rtt", upstream_delay + delay)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, duration_s: float, warmup_s: float = 0.0) -> DelayRecorder:
        """Run the session for ``duration_s`` simulated seconds.

        ``warmup_s`` seconds are simulated first and their measurements
        discarded, so the reported delays describe the steady state.
        """
        require_positive(duration_s, "duration_s")
        for source in self.client_sources:
            source.start()
        self.server_source.start()
        for source in self.background_sources:
            source.start()
        if warmup_s > 0.0:
            self.sim.run_until(warmup_s)
            self.delays = DelayRecorder()
            self._last_upstream_delay.clear()
        self.sim.run_until(warmup_s + duration_s)
        return self.delays

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def downlink_load(self) -> float:
        """Offered gaming load on the downstream aggregation link."""
        return (
            8.0
            * self.config.num_clients
            * self.workload.server_packet_bytes
            / (self.workload.tick_interval_s * self.config.aggregation_rate_bps)
        )

    @property
    def uplink_load(self) -> float:
        """Offered gaming load on the upstream aggregation link."""
        return (
            8.0
            * self.config.num_clients
            * self.workload.client_packet_bytes
            / (self.workload.tick_interval_s * self.config.aggregation_rate_bps)
        )
