"""Transmission links with a scheduler, a rate and a propagation delay.

A :class:`Link` models one output interface: packets handed to it are
queued in the link's scheduler, transmitted one at a time at the link
rate, and delivered to the downstream component after an optional
propagation delay.  The per-packet queueing delay (time between arrival
at the link and the start of transmission) is recorded on the packet, so
the metric collectors can attribute delay to individual hops.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import ParameterError
from ..units import require_non_negative, require_positive
from .schedulers import FIFOScheduler, Scheduler
from .simulator import SimPacket, Simulator

__all__ = ["Link"]


class Link:
    """A store-and-forward link.

    Parameters
    ----------
    sim:
        The simulation kernel.
    name:
        Human-readable name used in the per-packet timestamp keys.
    rate_bps:
        Transmission rate in bit/s.
    scheduler:
        Scheduling discipline for the waiting packets (FIFO by default).
    propagation_delay_s:
        Constant propagation delay added after serialization.
    target:
        Callable invoked with each packet once it has fully arrived at
        the other end of the link.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        scheduler: Optional[Scheduler] = None,
        propagation_delay_s: float = 0.0,
        target: Optional[Callable[[SimPacket], None]] = None,
    ) -> None:
        require_positive(rate_bps, "rate_bps")
        require_non_negative(propagation_delay_s, "propagation_delay_s")
        self.sim = sim
        self.name = name
        self.rate_bps = float(rate_bps)
        self.scheduler = scheduler if scheduler is not None else FIFOScheduler()
        self.propagation_delay_s = float(propagation_delay_s)
        self.target = target
        self._busy = False
        # Counters for utilisation checks.
        self.transmitted_packets = 0
        self.transmitted_bytes = 0.0
        self.busy_time_s = 0.0

    # ------------------------------------------------------------------
    # Packet ingress
    # ------------------------------------------------------------------
    def send(self, packet: SimPacket) -> None:
        """Hand a packet to this link for transmission."""
        packet.timestamps[f"{self.name}:arrival"] = self.sim.now
        self.scheduler.enqueue(packet, self.sim.now)
        if not self._busy:
            self._start_next()

    # ------------------------------------------------------------------
    # Transmission machinery
    # ------------------------------------------------------------------
    def serialization_time(self, packet: SimPacket) -> float:
        """Time to clock the packet onto the wire."""
        return packet.size_bits / self.rate_bps

    def _start_next(self) -> None:
        packet = self.scheduler.select(self.sim.now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        now = self.sim.now
        packet.timestamps[f"{self.name}:start"] = now
        packet.timestamps[f"{self.name}:queueing"] = (
            now - packet.timestamps.get(f"{self.name}:arrival", now)
        )
        duration = self.serialization_time(packet)
        self.busy_time_s += duration
        self.sim.schedule_in(duration, lambda p=packet: self._finish(p))

    def _finish(self, packet: SimPacket) -> None:
        packet.timestamps[f"{self.name}:departure"] = self.sim.now
        self.transmitted_packets += 1
        self.transmitted_bytes += packet.size_bytes
        if self.target is not None:
            if self.propagation_delay_s > 0.0:
                self.sim.schedule_in(
                    self.propagation_delay_s, lambda p=packet: self._deliver(p)
                )
            else:
                self._deliver(packet)
        self._start_next()

    def _deliver(self, packet: SimPacket) -> None:
        if self.target is None:  # pragma: no cover - defensive
            raise ParameterError(f"link {self.name!r} has no delivery target")
        packet.timestamps[f"{self.name}:delivered"] = self.sim.now
        self.target(packet)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def utilisation(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` the link spent transmitting."""
        if elapsed_s <= 0.0:
            return 0.0
        return min(self.busy_time_s / elapsed_s, 1.0)

    def queueing_delay_of(self, packet: SimPacket) -> float:
        """Recorded queueing delay of a packet at this link."""
        return packet.timestamps.get(f"{self.name}:queueing", 0.0)
