"""Discrete-event simulator core.

:class:`Simulator` owns the event calendar and provides the scheduling
primitives the network components use.  Components never advance time
themselves; they schedule callbacks and react to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..errors import SimulationError
from .events import EventQueue

__all__ = ["Simulator", "SimPacket"]


@dataclass
class SimPacket:
    """A packet travelling through the simulated network.

    Attributes
    ----------
    packet_id:
        Unique identifier assigned by the simulator.
    size_bytes:
        Packet size in bytes.
    traffic_class:
        Scheduler class the packet belongs to (e.g. ``"gaming"`` or
        ``"data"``).
    client_id:
        The gamer this packet belongs to.
    direction:
        ``"up"`` (client to server) or ``"down"`` (server to client).
    created_at:
        Simulation time at which the packet was handed to the first link.
    tick:
        Server tick index for downstream packets (used to pair RTT
        samples), ``None`` otherwise.
    timestamps:
        Free-form per-hop time annotations filled in by the components.
    """

    packet_id: int
    size_bytes: float
    traffic_class: str
    client_id: int
    direction: str
    created_at: float
    tick: Optional[int] = None
    timestamps: Dict[str, float] = field(default_factory=dict)

    @property
    def size_bits(self) -> float:
        """Packet size in bits."""
        return self.size_bytes * 8.0


class Simulator:
    """Event-driven simulation kernel."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self.events = EventQueue()
        self.rng = np.random.default_rng(seed)
        self._packet_counter = 0
        self._running = False

    # ------------------------------------------------------------------
    # Time and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.events.now

    def schedule(self, time: float, callback: Callable[[], None], priority: int = 0) -> None:
        """Schedule ``callback`` at absolute time ``time``."""
        self.events.schedule(time, callback, priority)

    def schedule_in(self, delay: float, callback: Callable[[], None], priority: int = 0) -> None:
        """Schedule ``callback`` after ``delay`` seconds."""
        self.events.schedule_in(delay, callback, priority)

    # ------------------------------------------------------------------
    # Packet factory
    # ------------------------------------------------------------------
    def new_packet(
        self,
        size_bytes: float,
        traffic_class: str,
        client_id: int,
        direction: str,
        tick: Optional[int] = None,
    ) -> SimPacket:
        """Create a packet stamped with the current simulation time."""
        if size_bytes <= 0.0:
            raise SimulationError(f"packet size must be positive, got {size_bytes}")
        self._packet_counter += 1
        return SimPacket(
            packet_id=self._packet_counter,
            size_bytes=size_bytes,
            traffic_class=traffic_class,
            client_id=client_id,
            direction=direction,
            created_at=self.now,
            tick=tick,
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Process events until ``end_time`` (exclusive of later events).

        Returns the number of events processed.  ``max_events`` guards
        against runaway simulations.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        processed = 0
        try:
            while True:
                next_time = self.events.peek_time()
                if next_time is None or next_time > end_time:
                    break
                event = self.events.pop()
                if event is None:  # pragma: no cover - defensive
                    break
                event.callback()
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"simulation exceeded the event budget of {max_events}"
                    )
        finally:
            self._running = False
        return processed
