"""Traffic sources feeding the simulated access network.

Three kinds of sources appear in the paper's setting:

* :class:`GamingClientSource` — the periodic upstream stream of one
  gamer (one packet per update interval);
* :class:`GamingServerSource` — the server's downstream burst stream
  (one packet per client per tick, with the burst size optionally drawn
  from a distribution to mimic the Erlang burst model);
* :class:`BackgroundDataSource` — elastic "data" traffic (large packets,
  Poisson arrivals) used to exercise the FIFO / priority / WFQ
  comparison of Section 1.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..distributions import Distribution
from ..errors import ParameterError
from ..units import require_positive
from .simulator import SimPacket, Simulator

__all__ = ["GamingClientSource", "GamingServerSource", "BackgroundDataSource"]


class GamingClientSource:
    """Periodic upstream source of one gamer."""

    def __init__(
        self,
        sim: Simulator,
        client_id: int,
        packet_bytes: float,
        interval_s: float,
        target: Callable[[SimPacket], None],
        traffic_class: str = "gaming",
        jitter: Optional[Distribution] = None,
        phase_s: Optional[float] = None,
    ) -> None:
        require_positive(packet_bytes, "packet_bytes")
        require_positive(interval_s, "interval_s")
        self.sim = sim
        self.client_id = int(client_id)
        self.packet_bytes = float(packet_bytes)
        self.interval_s = float(interval_s)
        self.target = target
        self.traffic_class = traffic_class
        self.jitter = jitter
        self.phase_s = (
            float(phase_s)
            if phase_s is not None
            else float(sim.rng.uniform(0.0, interval_s))
        )
        self.generated_packets = 0

    def start(self) -> None:
        """Schedule the first packet (honouring the random phase)."""
        self.sim.schedule(self.sim.now + self.phase_s, self._emit)

    def _emit(self) -> None:
        packet = self.sim.new_packet(
            size_bytes=self.packet_bytes,
            traffic_class=self.traffic_class,
            client_id=self.client_id,
            direction="up",
        )
        self.generated_packets += 1
        self.target(packet)
        next_interval = self.interval_s
        if self.jitter is not None:
            next_interval = max(float(self.jitter.sample(rng=self.sim.rng)), 1e-6)
        self.sim.schedule_in(next_interval, self._emit)


class GamingServerSource:
    """Tick-based downstream burst source of the game server."""

    def __init__(
        self,
        sim: Simulator,
        num_clients: int,
        packet_bytes: float,
        tick_interval_s: float,
        target: Callable[[SimPacket], None],
        traffic_class: str = "gaming",
        packet_size_distribution: Optional[Distribution] = None,
        shuffle_order: bool = True,
        client_ids: Optional[Sequence[int]] = None,
    ) -> None:
        if num_clients < 1:
            raise ParameterError("num_clients must be at least 1")
        require_positive(packet_bytes, "packet_bytes")
        require_positive(tick_interval_s, "tick_interval_s")
        self.sim = sim
        self.num_clients = int(num_clients)
        self.packet_bytes = float(packet_bytes)
        self.tick_interval_s = float(tick_interval_s)
        self.target = target
        self.traffic_class = traffic_class
        self.packet_size_distribution = packet_size_distribution
        self.shuffle_order = shuffle_order
        # A mix session runs one server source per game flow, each
        # addressing only its own slice of the client population.
        if client_ids is None:
            client_ids = range(self.num_clients)
        self.client_ids = [int(client_id) for client_id in client_ids]
        if len(self.client_ids) != self.num_clients:
            raise ParameterError(
                f"client_ids must list exactly num_clients ids "
                f"({len(self.client_ids)} != {self.num_clients})"
            )
        self.tick = 0

    def start(self) -> None:
        """Schedule the first tick at a random phase within one interval."""
        phase = float(self.sim.rng.uniform(0.0, self.tick_interval_s))
        self.sim.schedule(self.sim.now + phase, self._emit_burst)

    def _packet_size(self) -> float:
        if self.packet_size_distribution is None:
            return self.packet_bytes
        return max(float(self.packet_size_distribution.sample(rng=self.sim.rng)), 20.0)

    def _emit_burst(self) -> None:
        order = list(self.client_ids)
        if self.shuffle_order:
            self.sim.rng.shuffle(order)
        for client_id in order:
            packet = self.sim.new_packet(
                size_bytes=self._packet_size(),
                traffic_class=self.traffic_class,
                client_id=int(client_id),
                direction="down",
                tick=self.tick,
            )
            self.target(packet)
        self.tick += 1
        self.sim.schedule_in(self.tick_interval_s, self._emit_burst)


class BackgroundDataSource:
    """Poisson stream of large elastic-data packets."""

    def __init__(
        self,
        sim: Simulator,
        mean_rate_bps: float,
        packet_bytes: float,
        target: Callable[[SimPacket], None],
        traffic_class: str = "data",
        client_id: int = -1,
        direction: str = "down",
    ) -> None:
        require_positive(mean_rate_bps, "mean_rate_bps")
        require_positive(packet_bytes, "packet_bytes")
        self.sim = sim
        self.packet_bytes = float(packet_bytes)
        self.mean_interval_s = (packet_bytes * 8.0) / float(mean_rate_bps)
        self.target = target
        self.traffic_class = traffic_class
        self.client_id = int(client_id)
        self.direction = direction
        self.generated_packets = 0

    def start(self) -> None:
        """Schedule the first data packet."""
        self.sim.schedule_in(
            float(self.sim.rng.exponential(self.mean_interval_s)), self._emit
        )

    def _emit(self) -> None:
        packet = self.sim.new_packet(
            size_bytes=self.packet_bytes,
            traffic_class=self.traffic_class,
            client_id=self.client_id,
            direction=self.direction,
        )
        self.generated_packets += 1
        self.target(packet)
        self.sim.schedule_in(
            float(self.sim.rng.exponential(self.mean_interval_s)), self._emit
        )
