"""Discrete-event simulator of the Figure 2 access architecture."""

from .events import Event, EventQueue
from .simulator import SimPacket, Simulator
from .schedulers import FIFOScheduler, PriorityScheduler, Scheduler, WFQScheduler
from .links import Link
from .sources import BackgroundDataSource, GamingClientSource, GamingServerSource
from .metrics import DelayRecorder, DelaySummary
from .topology import AccessNetwork, AccessNetworkConfig, make_scheduler
from .gaming import GamingSimulation, GamingWorkload, MixGamingSimulation

__all__ = [
    "Event",
    "EventQueue",
    "SimPacket",
    "Simulator",
    "FIFOScheduler",
    "PriorityScheduler",
    "Scheduler",
    "WFQScheduler",
    "Link",
    "BackgroundDataSource",
    "GamingClientSource",
    "GamingServerSource",
    "DelayRecorder",
    "DelaySummary",
    "AccessNetwork",
    "AccessNetworkConfig",
    "make_scheduler",
    "GamingSimulation",
    "GamingWorkload",
    "MixGamingSimulation",
]
