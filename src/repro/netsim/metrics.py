"""Delay measurement and summarisation for the simulator.

:class:`DelayRecorder` collects per-packet delay samples by category
("upstream", "downstream", "rtt", ...) and provides the summaries the
validation benchmarks need: means, empirical quantiles and tail
probabilities.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ParameterError

__all__ = ["DelaySummary", "DelayRecorder"]


@dataclass(frozen=True)
class DelaySummary:
    """Summary statistics of one delay category (all in seconds)."""

    count: int
    mean: float
    std: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


class DelayRecorder:
    """Accumulates delay samples per category."""

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = collections.defaultdict(list)

    def record(self, category: str, delay_s: float) -> None:
        """Add one delay sample (negative delays indicate a bug upstream)."""
        if delay_s < -1e-12:
            raise ParameterError(f"negative delay recorded for {category!r}: {delay_s}")
        self._samples[category].append(max(delay_s, 0.0))

    def categories(self) -> Sequence[str]:
        """Names of the categories that received at least one sample."""
        return sorted(self._samples)

    def samples(self, category: str) -> np.ndarray:
        """All samples of a category as an array (seconds)."""
        return np.asarray(self._samples.get(category, []), dtype=float)

    def count(self, category: str) -> int:
        """Number of samples recorded for a category."""
        return len(self._samples.get(category, []))

    def mean(self, category: str) -> float:
        """Mean delay of a category in seconds."""
        data = self.samples(category)
        if data.size == 0:
            raise ParameterError(f"no samples recorded for category {category!r}")
        return float(np.mean(data))

    def quantile(self, category: str, probability: float) -> float:
        """Empirical quantile of a category."""
        if not 0.0 < probability < 1.0:
            raise ParameterError("probability must lie in (0, 1)")
        data = self.samples(category)
        if data.size == 0:
            raise ParameterError(f"no samples recorded for category {category!r}")
        return float(np.quantile(data, probability))

    def tail_probability(self, category: str, threshold_s: float) -> float:
        """Empirical ``P(delay > threshold)`` of a category."""
        data = self.samples(category)
        if data.size == 0:
            raise ParameterError(f"no samples recorded for category {category!r}")
        return float(np.mean(data > threshold_s))

    def summary(self, category: str) -> DelaySummary:
        """Full summary of a category."""
        data = self.samples(category)
        if data.size == 0:
            raise ParameterError(f"no samples recorded for category {category!r}")
        return DelaySummary(
            count=int(data.size),
            mean=float(np.mean(data)),
            std=float(np.std(data)),
            p50=float(np.quantile(data, 0.50)),
            p95=float(np.quantile(data, 0.95)),
            p99=float(np.quantile(data, 0.99)),
            maximum=float(np.max(data)),
        )

    def all_summaries(self) -> Dict[str, DelaySummary]:
        """Summaries for every category with samples."""
        return {category: self.summary(category) for category in self.categories()}
