"""Link schedulers: FIFO, Head-of-Line priority and Weighted Fair Queuing.

Section 1 of the paper motivates the use of WFQ-like schedulers: they
give the gaming class a guaranteed share of the link without starving
the elastic (TCP) traffic, and — unlike FIFO — shield the gaming class
from data bursts.  The simulator implements all three so that the
qualitative comparison can be reproduced (see the scheduler-comparison
example and the integration tests).

Each scheduler manages the per-class packet queues of one output link
and answers a single question: *which packet is transmitted next?*
"""

from __future__ import annotations

import collections
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import ParameterError, SimulationError
from .simulator import SimPacket

__all__ = ["Scheduler", "FIFOScheduler", "PriorityScheduler", "WFQScheduler"]


class Scheduler:
    """Base class: per-class queues plus a selection policy."""

    def __init__(self) -> None:
        self._queues: Dict[str, Deque[SimPacket]] = collections.defaultdict(collections.deque)

    # -- queue management ------------------------------------------------
    def enqueue(self, packet: SimPacket, now: float) -> None:
        """Add a packet to its class queue."""
        packet.timestamps.setdefault("enqueued", now)
        self._queues[packet.traffic_class].append(packet)
        self._on_enqueue(packet, now)

    def _on_enqueue(self, packet: SimPacket, now: float) -> None:
        """Hook for subclasses that keep per-packet state (e.g. WFQ tags)."""

    def is_empty(self) -> bool:
        """True when no packet is waiting in any class."""
        return all(not queue for queue in self._queues.values())

    def backlog_packets(self) -> int:
        """Total number of queued packets across all classes."""
        return sum(len(queue) for queue in self._queues.values())

    def backlog_bytes(self, traffic_class: Optional[str] = None) -> float:
        """Queued bytes, optionally restricted to one class."""
        if traffic_class is not None:
            return float(sum(p.size_bytes for p in self._queues[traffic_class]))
        return float(
            sum(p.size_bytes for queue in self._queues.values() for p in queue)
        )

    # -- selection policy --------------------------------------------------
    def select(self, now: float) -> Optional[SimPacket]:
        """Remove and return the next packet to transmit (or ``None``)."""
        raise NotImplementedError


class FIFOScheduler(Scheduler):
    """A single first-in-first-out queue shared by every class.

    This is the baseline of Section 1 in which elastic traffic can
    jeopardise the gaming delay.
    """

    def __init__(self) -> None:
        super().__init__()
        self._order: Deque[SimPacket] = collections.deque()

    def _on_enqueue(self, packet: SimPacket, now: float) -> None:
        self._order.append(packet)

    def select(self, now: float) -> Optional[SimPacket]:
        while self._order:
            packet = self._order.popleft()
            queue = self._queues[packet.traffic_class]
            if queue and queue[0] is packet:
                queue.popleft()
                return packet
            # The packet was already removed through the class queue
            # (cannot normally happen, but keeps the structures in sync).
            try:
                queue.remove(packet)
                return packet
            except ValueError:  # pragma: no cover - defensive
                continue
        return None


class PriorityScheduler(Scheduler):
    """Non-pre-emptive Head-of-Line priority between classes.

    ``class_order`` lists the classes from highest to lowest priority;
    unknown classes are served after all listed ones, in FIFO order.
    """

    def __init__(self, class_order: Sequence[str]) -> None:
        super().__init__()
        if not class_order:
            raise ParameterError("class_order must list at least one class")
        self.class_order: List[str] = list(class_order)

    def select(self, now: float) -> Optional[SimPacket]:
        for traffic_class in self.class_order:
            queue = self._queues.get(traffic_class)
            if queue:
                return queue.popleft()
        for traffic_class, queue in self._queues.items():
            if traffic_class not in self.class_order and queue:
                return queue.popleft()
        return None


class WFQScheduler(Scheduler):
    """Weighted Fair Queuing (packetised GPS approximation).

    Each class receives a weight; packets are stamped with virtual
    finish times ``F = max(V, F_class) + size / weight`` where ``V`` is
    the system virtual time (advanced to the finish tag of each packet
    selected for transmission), and the packet with the smallest finish
    tag is transmitted next.  This is the classic self-clocked fair
    queuing approximation of GPS, sufficient for the delay comparisons
    in this reproduction.
    """

    def __init__(self, weights: Dict[str, float]) -> None:
        super().__init__()
        if not weights:
            raise ParameterError("WFQ needs at least one class weight")
        for name, weight in weights.items():
            if weight <= 0.0:
                raise ParameterError(f"WFQ weight for class {name!r} must be positive")
        self.weights = dict(weights)
        self._virtual_time = 0.0
        self._last_finish: Dict[str, float] = collections.defaultdict(float)
        self._finish_tags: Dict[int, float] = {}

    def _on_enqueue(self, packet: SimPacket, now: float) -> None:
        weight = self.weights.get(packet.traffic_class)
        if weight is None:
            raise SimulationError(
                f"packet of class {packet.traffic_class!r} arrived at a WFQ scheduler "
                f"configured for classes {sorted(self.weights)}"
            )
        start = max(self._virtual_time, self._last_finish[packet.traffic_class])
        finish = start + packet.size_bytes / weight
        self._last_finish[packet.traffic_class] = finish
        self._finish_tags[packet.packet_id] = finish

    def select(self, now: float) -> Optional[SimPacket]:
        best_class: Optional[str] = None
        best_tag = float("inf")
        for traffic_class, queue in self._queues.items():
            if not queue:
                continue
            tag = self._finish_tags[queue[0].packet_id]
            if tag < best_tag:
                best_tag = tag
                best_class = traffic_class
        if best_class is None:
            return None
        packet = self._queues[best_class].popleft()
        self._virtual_time = max(self._virtual_time, self._finish_tags.pop(packet.packet_id))
        return packet
