"""Event queue for the discrete-event simulator.

A tiny, dependency-free event calendar: events are ``(time, priority,
sequence, callback)`` tuples kept in a binary heap.  The sequence number
makes the ordering total and deterministic, which matters for
reproducible simulations (two events at the same instant always fire in
scheduling order).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled callback."""

    time: float
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False, hash=False)


class EventQueue:
    """A time-ordered queue of events."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time (the timestamp of the last popped event)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, callback: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``callback`` to fire at ``time`` (>= current time)."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule an event in the past (now={self._now}, requested={time})"
            )
        event = Event(time=time, priority=priority, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, priority)

    def pop(self) -> Optional[Event]:
        """Remove and return the next event, advancing the clock."""
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._now = event.time
        return event

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next event, or ``None`` when the queue is empty."""
        return self._heap[0].time if self._heap else None
