"""The access-network topology of Figure 2.

Clients are connected through individual DSL access links to an
aggregation node; the aggregation node talks to the gaming server over a
bottleneck link whose gaming share is ``aggregation_rate_bps``.  The
mirror-image path carries the downstream traffic back to the clients.

The :class:`AccessNetwork` builds the :class:`~repro.netsim.links.Link`
objects of both directions and exposes the delivery hooks the traffic
sources and the measurement code attach to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import ParameterError
from ..units import require_non_negative, require_positive
from .links import Link
from .schedulers import FIFOScheduler, PriorityScheduler, Scheduler, WFQScheduler
from .simulator import SimPacket, Simulator

__all__ = ["AccessNetworkConfig", "AccessNetwork", "make_scheduler"]


def make_scheduler(kind: str, gaming_weight: float = 0.5) -> Scheduler:
    """Build one of the Section 1 schedulers by name.

    ``kind`` is ``"fifo"``, ``"priority"`` (gaming ahead of data) or
    ``"wfq"`` (gaming share ``gaming_weight`` of the link).
    """
    kind = kind.lower()
    if kind == "fifo":
        return FIFOScheduler()
    if kind == "priority":
        return PriorityScheduler(["gaming", "data"])
    if kind == "wfq":
        if not 0.0 < gaming_weight < 1.0:
            raise ParameterError("gaming_weight must lie in (0, 1)")
        return WFQScheduler({"gaming": gaming_weight, "data": 1.0 - gaming_weight})
    raise ParameterError(f"unknown scheduler kind {kind!r}")


@dataclass(frozen=True)
class AccessNetworkConfig:
    """Static parameters of the Figure 2 architecture.

    The defaults are the DSL scenario of Section 4.
    """

    num_clients: int = 10
    access_uplink_bps: float = 128_000.0
    access_downlink_bps: float = 1_024_000.0
    aggregation_rate_bps: float = 5_000_000.0
    propagation_delay_s: float = 0.0
    scheduler: str = "fifo"
    gaming_weight: float = 0.5

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ParameterError("num_clients must be at least 1")
        require_positive(self.access_uplink_bps, "access_uplink_bps")
        require_positive(self.access_downlink_bps, "access_downlink_bps")
        require_positive(self.aggregation_rate_bps, "aggregation_rate_bps")
        require_non_negative(self.propagation_delay_s, "propagation_delay_s")

    @classmethod
    def from_scenario(
        cls,
        scenario,
        num_clients: int,
        scheduler: str = "fifo",
        gaming_weight: float = 0.5,
    ) -> "AccessNetworkConfig":
        """Network configuration matching a :class:`~repro.scenarios.base.Scenario`."""
        return cls(
            num_clients=num_clients,
            access_uplink_bps=scenario.access_uplink_bps,
            access_downlink_bps=scenario.access_downlink_bps,
            aggregation_rate_bps=scenario.aggregation_rate_bps,
            propagation_delay_s=scenario.propagation_delay_s,
            scheduler=scheduler,
            gaming_weight=gaming_weight,
        )


class AccessNetwork:
    """The simulated links of the Figure 2 client-server architecture."""

    def __init__(
        self,
        sim: Simulator,
        config: AccessNetworkConfig,
        on_server_receive: Callable[[SimPacket], None],
        on_client_receive: Callable[[SimPacket], None],
        uplink_rates: Optional[Dict[int, float]] = None,
        downlink_rates: Optional[Dict[int, float]] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.on_server_receive = on_server_receive
        self.on_client_receive = on_client_receive
        # In a mix session each game's clients keep their own access
        # rates; the config's scalar rates are the default for clients
        # without an override.
        uplink_rates = dict(uplink_rates or {})
        downlink_rates = dict(downlink_rates or {})
        for label, overrides in (("uplink", uplink_rates), ("downlink", downlink_rates)):
            for client_id, rate_bps in overrides.items():
                if not 0 <= int(client_id) < config.num_clients:
                    raise ParameterError(
                        f"{label}_rates names unknown client id {client_id}"
                    )
                require_positive(rate_bps, f"{label}_rates[{client_id}]")

        # Upstream: per-client access link -> shared aggregation link -> server.
        self.uplink_aggregation = Link(
            sim,
            name="uplink-aggregation",
            rate_bps=config.aggregation_rate_bps,
            scheduler=make_scheduler(config.scheduler, config.gaming_weight),
            propagation_delay_s=config.propagation_delay_s,
            target=self.on_server_receive,
        )
        self.uplink_access: Dict[int, Link] = {
            client_id: Link(
                sim,
                name=f"uplink-access-{client_id}",
                rate_bps=uplink_rates.get(client_id, config.access_uplink_bps),
                scheduler=FIFOScheduler(),
                target=self.uplink_aggregation.send,
            )
            for client_id in range(config.num_clients)
        }

        # Downstream: shared aggregation link -> per-client access link -> client.
        self.downlink_access: Dict[int, Link] = {
            client_id: Link(
                sim,
                name=f"downlink-access-{client_id}",
                rate_bps=downlink_rates.get(client_id, config.access_downlink_bps),
                scheduler=FIFOScheduler(),
                target=self.on_client_receive,
            )
            for client_id in range(config.num_clients)
        }
        self.downlink_aggregation = Link(
            sim,
            name="downlink-aggregation",
            rate_bps=config.aggregation_rate_bps,
            scheduler=make_scheduler(config.scheduler, config.gaming_weight),
            propagation_delay_s=config.propagation_delay_s,
            target=self._fan_out,
        )

    # ------------------------------------------------------------------
    # Ingress points used by the sources
    # ------------------------------------------------------------------
    def client_send(self, packet: SimPacket) -> None:
        """A client hands an upstream packet to its access link."""
        link = self.uplink_access.get(packet.client_id)
        if link is None:
            raise ParameterError(f"unknown client id {packet.client_id}")
        link.send(packet)

    def server_send(self, packet: SimPacket) -> None:
        """The server hands a downstream packet to the aggregation link."""
        self.downlink_aggregation.send(packet)

    # ------------------------------------------------------------------
    # Internal plumbing
    # ------------------------------------------------------------------
    def _fan_out(self, packet: SimPacket) -> None:
        """Dispatch a downstream packet onto its client's access link.

        Background data packets (negative client ids) are delivered
        straight to the measurement hook — they only exist to load the
        aggregation link.
        """
        link = self.downlink_access.get(packet.client_id)
        if link is None:
            self.on_client_receive(packet)
            return
        link.send(packet)

    # ------------------------------------------------------------------
    # Metrics helpers
    # ------------------------------------------------------------------
    def aggregation_queueing_delays(self, packet: SimPacket) -> Dict[str, float]:
        """The queueing delay a packet experienced on the shared links."""
        return {
            "uplink": self.uplink_aggregation.queueing_delay_of(packet),
            "downlink": self.downlink_aggregation.queueing_delay_of(packet),
        }
