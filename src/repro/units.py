"""Unit conversion helpers.

The paper mixes engineering units freely: packet sizes in bytes, link
rates in kbit/s, inter-arrival times in milliseconds and queueing delays
in seconds.  Internally the library works in SI units (seconds, bits,
bits per second); this module provides the explicit conversions so the
intent is visible at every call site.
"""

from __future__ import annotations

from .errors import ParameterError

__all__ = [
    "BITS_PER_BYTE",
    "bytes_to_bits",
    "bits_to_bytes",
    "kbps_to_bps",
    "bps_to_kbps",
    "mbps_to_bps",
    "ms_to_s",
    "s_to_ms",
    "serialization_delay",
    "require_positive",
    "require_non_negative",
    "require_fraction",
]

BITS_PER_BYTE = 8


def bytes_to_bits(size_bytes: float) -> float:
    """Convert a size in bytes to bits."""
    return float(size_bytes) * BITS_PER_BYTE


def bits_to_bytes(size_bits: float) -> float:
    """Convert a size in bits to bytes."""
    return float(size_bits) / BITS_PER_BYTE


def kbps_to_bps(rate_kbps: float) -> float:
    """Convert a link rate from kbit/s to bit/s."""
    return float(rate_kbps) * 1_000.0


def bps_to_kbps(rate_bps: float) -> float:
    """Convert a link rate from bit/s to kbit/s."""
    return float(rate_bps) / 1_000.0


def mbps_to_bps(rate_mbps: float) -> float:
    """Convert a link rate from Mbit/s to bit/s."""
    return float(rate_mbps) * 1_000_000.0


def ms_to_s(duration_ms: float) -> float:
    """Convert a duration from milliseconds to seconds."""
    return float(duration_ms) / 1_000.0


def s_to_ms(duration_s: float) -> float:
    """Convert a duration from seconds to milliseconds."""
    return float(duration_s) * 1_000.0


def serialization_delay(packet_bytes: float, rate_bps: float) -> float:
    """Return the time (in seconds) to serialise a packet on a link.

    Parameters
    ----------
    packet_bytes:
        Packet size in bytes.
    rate_bps:
        Link rate in bits per second.
    """
    require_positive(rate_bps, "rate_bps")
    require_non_negative(packet_bytes, "packet_bytes")
    return bytes_to_bits(packet_bytes) / float(rate_bps)


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    value = float(value)
    if not value > 0.0:
        raise ParameterError(f"{name} must be strictly positive, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    value = float(value)
    if value < 0.0:
        raise ParameterError(f"{name} must be non-negative, got {value!r}")
    return value


def require_fraction(value: float, name: str, *, inclusive: bool = False) -> float:
    """Validate that ``value`` lies in (0, 1), or [0, 1] if ``inclusive``."""
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ParameterError(f"{name} must lie in [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise ParameterError(f"{name} must lie in (0, 1), got {value!r}")
    return value
