"""Cached evaluation facade over a :class:`~repro.scenarios.base.Scenario`.

The seed code rebuilt a :class:`~repro.core.rtt.PingTimeModel` from
scratch at every sweep point and every bisection step of the
dimensioning search, even when the operating point had already been
evaluated.  :class:`Engine` owns one scenario and memoizes both the
models and the quantile evaluations per (operating point, probability,
method), so that

* ``engine.rtt_quantile(load)`` builds each distinct operating point
  once, ever;
* ``engine.sweep(loads)`` evaluates a load grid as a batch — duplicate
  and previously-seen loads are cache hits — instead of per-point
  rebuilds;
* ``engine.dimension(rtt_bound)`` shares its bisection evaluations with
  every other query, and reads the RTT at the optimum straight from the
  cache instead of rebuilding the model a final time;
* ``engine.simulate(...)`` runs the discrete-event validation of the
  same scenario without re-threading nine keyword arguments.

The cache is exact: hits return the very same floats the uncached path
would produce (verified by the test suite), because keys are the
rounded number of gamers — the only model parameter a load maps to.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from scipy import optimize

from .core.dimensioning import AdmissionResult, DimensioningResult
from .core.rtt import (
    DEFAULT_QUANTILE,
    QUANTILE_METHODS,
    CostModel,
    PingTimeModel,
    compile_eval_plans,
    execute_plan,
    plan_signature,
)
from .errors import ParameterError
from .scenarios.base import Scenario
from .scenarios.mix import MixScenario
from .scenarios.sweep import SweepPoint, SweepSeries, default_load_grid

__all__ = ["Engine", "EngineStats"]


@dataclass
class EngineStats:
    """Cache bookkeeping of one :class:`Engine`."""

    model_builds: int = 0
    model_cache_hits: int = 0
    #: Models dropped by the LRU model-entry budget (``max_models``).
    model_evictions: int = 0
    quantile_evaluations: int = 0
    quantile_cache_hits: int = 0
    #: Joint array evaluations spent by the stacked batch inverter on
    #: behalf of this engine (sweep / rtt_quantiles cache misses),
    #: folded from the executed plans' own counters — so the number is
    #: right even when the plans ran in worker processes.
    stacked_mgf_calls: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "model_builds": self.model_builds,
            "model_cache_hits": self.model_cache_hits,
            "model_evictions": self.model_evictions,
            "quantile_evaluations": self.quantile_evaluations,
            "quantile_cache_hits": self.quantile_cache_hits,
            "stacked_mgf_calls": self.stacked_mgf_calls,
        }


class Engine:
    """Memoized evaluator for one scenario.

    Parameters
    ----------
    scenario:
        The :class:`Scenario` to evaluate (a parameter mapping is also
        accepted and converted with :meth:`Scenario.from_dict`).
    probability:
        Default quantile level for RTT queries (the paper's 99.999%).
    method:
        Default quantile evaluation method (see
        :data:`~repro.core.rtt.QUANTILE_METHODS`).
    max_models:
        Optional entry budget of the memoized model cache (default:
        unbounded, the historical behavior).  A huge per-scenario grid
        can otherwise pin one transform set per distinct operating
        point for the engine's lifetime; beyond the budget the
        least-recently-used model is dropped
        (``stats.model_evictions``).  Eviction never touches the
        quantile cache, and a re-built model produces bit-identical
        floats, so answers are unaffected.
    executor:
        Optional :class:`repro.executors.Executor` used to run the
        batched cache misses of :meth:`sweep` / :meth:`rtt_quantiles`.
        The default executes the compiled plans in-process against the
        live memoized models; any executor returns the same floats.
    cost_model:
        The :class:`~repro.core.rtt.CostModel` sizing the compiled
        plans (default: a fresh one seeded with static priors).  Every
        executed plan's measured cost is folded back, so repeat batches
        chunk to roughly equal-cost plans.  Purely a scheduling knob:
        any cost model yields bit-identical floats.
    """

    def __init__(
        self,
        scenario: Union[Scenario, Mapping[str, float]],
        *,
        probability: float = DEFAULT_QUANTILE,
        method: str = "inversion",
        max_models: Optional[int] = None,
        executor=None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if isinstance(scenario, Mapping):
            scenario = Scenario.from_dict(scenario)
        if not isinstance(scenario, (Scenario, MixScenario)):
            raise TypeError(
                "expected a Scenario, MixScenario or a parameter mapping, "
                f"got {type(scenario).__name__}"
            )
        if not 0.0 < probability < 1.0:
            raise ParameterError("probability must lie in (0, 1)")
        if method not in QUANTILE_METHODS:
            raise ParameterError(
                f"method must be one of {QUANTILE_METHODS}; got {method!r}"
            )
        if max_models is not None and int(max_models) < 1:
            raise ParameterError("max_models must be at least 1 (or None)")
        self.scenario = scenario
        self.probability = float(probability)
        self.method = method
        self.max_models = None if max_models is None else int(max_models)
        self.executor = executor
        self.cost_model = CostModel() if cost_model is None else cost_model
        self.stats = EngineStats()
        self._models: "OrderedDict[float, PingTimeModel]" = OrderedDict()
        self._quantiles: Dict[Tuple[float, float, str], float] = {}
        #: Certified surfaces for this scenario (attach_surface /
        #: build_surface).  They never answer point queries — the
        #: engine is the exact tier — but sweeps hand them to their
        #: SweepSeries so between-point interpolation is certified.
        self._surfaces = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Engine({self.scenario!r}, probability={self.probability}, "
            f"method={self.method!r})"
        )

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _gamers_key(num_gamers: float) -> float:
        """Float-stable cache key for an operating point."""
        return round(float(num_gamers), 9)

    def clear_cache(self) -> None:
        """Drop all memoized models and quantiles (stats are kept)."""
        self._models.clear()
        self._quantiles.clear()

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------
    def model_for_gamers(self, num_gamers: float) -> PingTimeModel:
        """The (memoized) RTT model for an explicit number of gamers.

        Hits refresh the entry's LRU position; when ``max_models`` is
        set, inserting beyond the budget drops the least-recently-used
        model (a later request simply rebuilds it, bit-identically).
        """
        key = self._gamers_key(num_gamers)
        model = self._models.get(key)
        if model is None:
            model = self.scenario.model_for_gamers(num_gamers)
            self._models[key] = model
            self.stats.model_builds += 1
            if self.max_models is not None:
                while len(self._models) > self.max_models:
                    self._models.popitem(last=False)
                    self.stats.model_evictions += 1
        else:
            self._models.move_to_end(key)
            self.stats.model_cache_hits += 1
        return model

    def model_at_load(self, downlink_load: float) -> PingTimeModel:
        """The (memoized) RTT model at a downlink load on the bottleneck."""
        num_gamers = self.scenario.gamers_at_load(float(downlink_load))
        if num_gamers < 1.0:
            raise ParameterError(
                f"load {downlink_load:.3f} corresponds to fewer than one gamer"
            )
        return self.model_for_gamers(num_gamers)

    # ------------------------------------------------------------------
    # RTT quantiles
    # ------------------------------------------------------------------
    def _resolve(self, probability: Optional[float], method: Optional[str]) -> Tuple[float, str]:
        probability = self.probability if probability is None else float(probability)
        method = self.method if method is None else method
        if not 0.0 < probability < 1.0:
            raise ParameterError("probability must lie in (0, 1)")
        if method not in QUANTILE_METHODS:
            raise ParameterError(
                f"method must be one of {QUANTILE_METHODS}; got {method!r}"
            )
        return probability, method

    def rtt_quantile_for_gamers(
        self,
        num_gamers: float,
        probability: Optional[float] = None,
        method: Optional[str] = None,
    ) -> float:
        """RTT quantile (seconds) at an explicit gamer count, memoized."""
        probability, method = self._resolve(probability, method)
        key = (self._gamers_key(num_gamers), probability, method)
        value = self._quantiles.get(key)
        if value is None:
            model = self.model_for_gamers(num_gamers)
            value = model.rtt_quantile(probability, method=method)
            self._quantiles[key] = value
            self.stats.quantile_evaluations += 1
        else:
            self.stats.quantile_cache_hits += 1
        return value

    def rtt_quantile(
        self,
        downlink_load: float,
        probability: Optional[float] = None,
        method: Optional[str] = None,
    ) -> float:
        """RTT quantile (seconds) at a downlink load, memoized."""
        num_gamers = self.scenario.gamers_at_load(float(downlink_load))
        if num_gamers < 1.0:
            raise ParameterError(
                f"load {downlink_load:.3f} corresponds to fewer than one gamer"
            )
        return self.rtt_quantile_for_gamers(num_gamers, probability, method)

    def rtt_quantiles(
        self,
        downlink_loads: Sequence[float],
        probability: Optional[float] = None,
        method: Optional[str] = None,
    ) -> list:
        """Batch evaluation of :meth:`rtt_quantile` over a load grid.

        A thin adapter over the stacked batch path: cache misses are
        evaluated together through
        :func:`~repro.core.rtt.batch_rtt_quantiles`, whose lockstep
        searches spend one *joint* array evaluation per round across
        every missing operating point (see
        :class:`~repro.core.rtt.QueueingMgfStack`); the floats are
        identical to per-point :meth:`rtt_quantile` calls.
        """
        probability, method = self._resolve(probability, method)
        models = [self.model_at_load(float(load)) for load in downlink_loads]
        return self._quantiles_for_models(models, probability, method)

    def _quantiles_for_models(
        self, models: Sequence[PingTimeModel], probability: float, method: str
    ) -> list:
        """Batch-resolve RTT quantiles for already-built models.

        Duplicate and previously-seen operating points are cache hits;
        the remaining points are compiled into :class:`EvalPlan` units
        and executed through the shared plan layer — in-process against
        the live models by default, or on ``self.executor`` (e.g. a
        process pool) with bit-identical floats.
        """
        ordered = []
        missing: Dict[Tuple[float, float, str], PingTimeModel] = {}
        for model in models:
            key = (self._gamers_key(model.num_gamers), probability, method)
            ordered.append(key)
            if key in self._quantiles or key in missing:
                self.stats.quantile_cache_hits += 1
            else:
                missing[key] = model
        if missing:
            missing_models = list(missing.values())
            plans = compile_eval_plans(
                missing_models, probability, method=method, cost_model=self.cost_model
            )
            if self.executor is None:
                results = [
                    execute_plan(plan, models=[missing_models[i] for i in plan.indices])
                    for plan in plans
                ]
            else:
                results = self.executor.run(plans)
            values: list = [None] * len(missing_models)
            for plan, result in zip(plans, results):
                self.cost_model.observe(
                    plan_signature(plan), len(plan.indices), result.exec_s
                )
                self.stats.stacked_mgf_calls += result.stacked_mgf_calls
                for index, value in zip(result.indices, result.values):
                    values[index] = value
            for key, value in zip(missing, values):
                self._quantiles[key] = value
                self.stats.quantile_evaluations += 1
        return [self._quantiles[key] for key in ordered]

    # ------------------------------------------------------------------
    # Certified surfaces (see repro.surface)
    # ------------------------------------------------------------------
    def attach_surface(self, surface_or_index) -> int:
        """Attach certified quantile surface(s) built for this scenario.

        Accepts one :class:`~repro.surface.QuantileSurface` or a whole
        :class:`~repro.surface.SurfaceIndex` (only the entries matching
        this engine's scenario are kept).  A single surface certified
        for a different scenario raises
        :class:`~repro.errors.ParameterError`.  Returns the number of
        surfaces attached.

        Point quantile queries (:meth:`rtt_quantile`) remain exact —
        the engine *is* the exact tier the surfaces certify against.
        The attachment makes :meth:`sweep` hand the matching surface to
        its series, so
        :meth:`~repro.scenarios.sweep.SweepSeries.interpolate_rtt_ms` /
        :meth:`~repro.scenarios.sweep.SweepSeries.max_load_for_rtt_ms`
        carry a certified bound instead of uncertified linear
        interpolation, and it routes the *inverse* queries —
        :meth:`dimension` and :meth:`admit` — through the surface's
        O(1) brentq inversion when the budget's root is certified
        in-region (zero evaluation plans executed; the exact path is
        the bit-identical fallback).  O(1) surface *serving* lives in
        :meth:`repro.fleet.Fleet.attach_surfaces`.
        """
        from .surface import QuantileSurface, SurfaceIndex

        scenario_key = self.scenario.cache_key()
        if isinstance(surface_or_index, QuantileSurface):
            if surface_or_index.scenario_key != scenario_key:
                raise ParameterError(
                    "the surface was certified for scenario "
                    f"{surface_or_index.scenario_key}, not this engine's "
                    f"{scenario_key}"
                )
            candidates = [surface_or_index]
        elif isinstance(surface_or_index, SurfaceIndex):
            candidates = [
                surface
                for surface in surface_or_index
                if surface.scenario_key == scenario_key
            ]
        else:
            raise TypeError(
                "expected a QuantileSurface or SurfaceIndex, got "
                f"{type(surface_or_index).__name__}"
            )
        if self._surfaces is None:
            self._surfaces = SurfaceIndex()
        for surface in candidates:
            self._surfaces.add(surface)
        return len(candidates)

    def build_surface(self, methods=None, **kwargs):
        """Build, attach and return certified surface(s) for this scenario.

        ``methods`` is a method name, a sequence of names, or ``"all"``;
        it defaults to this engine's method.  Keyword arguments are
        forwarded to :func:`repro.surface.builder.build_surface`
        (tolerance, region bounds, …).  The build's exact evaluations
        run through this engine, so they land in — and draw from — the
        shared memoized cache; the resulting
        :class:`~repro.surface.SurfaceIndex` is attached (see
        :meth:`attach_surface`) and returned.
        """
        from .surface.builder import build_surfaces

        if methods is None:
            methods = (self.method,)
        index = build_surfaces(self.scenario, methods, engine=self, **kwargs)
        self.attach_surface(index)
        return index

    # ------------------------------------------------------------------
    # Sweeps (the Figure 3 / Figure 4 engine)
    # ------------------------------------------------------------------
    def sweep(
        self,
        loads: Optional[Sequence[float]] = None,
        probability: Optional[float] = None,
        method: Optional[str] = None,
        label: Optional[str] = None,
    ) -> SweepSeries:
        """Evaluate the RTT quantile over a grid of downlink loads.

        The grid is evaluated as a batch against the shared cache: each
        distinct operating point is built and inverted exactly once per
        (probability, method), including across repeated ``sweep`` /
        ``dimension`` / ``rtt_quantile`` calls on the same engine.  The
        cache misses are inverted together through the stacked batch
        path (one joint array evaluation per search round across the
        whole grid, instead of one MGF array call per point — which
        itself replaced one scalar call per Euler abscissa).
        """
        if loads is None:
            loads = default_load_grid()
        probability, method = self._resolve(probability, method)
        scenario = self.scenario
        series = SweepSeries(
            label=label or scenario.describe(),
            scenario=scenario,
            probability=probability,
        )
        loads = [float(load) for load in loads]
        models = [self.model_at_load(load) for load in loads]
        quantiles = self._quantiles_for_models(models, probability, method)
        for load, model, rtt_quantile_s in zip(loads, models, quantiles):
            series.points.append(
                SweepPoint(
                    downlink_load=load,
                    uplink_load=model.uplink_load,
                    num_gamers=model.num_gamers,
                    rtt_quantile_s=rtt_quantile_s,
                )
            )
        if self._surfaces is not None:
            surface = self._surfaces.get(scenario.cache_key(), method)
            if (
                surface is not None
                and surface.probability_lo <= probability <= surface.probability_hi
            ):
                series.attach_surface(surface)
        return series

    # ------------------------------------------------------------------
    # Dimensioning (Section 4)
    # ------------------------------------------------------------------
    def _surface_invert(
        self, rtt_bound_s: float, probability: float, method: str, ceiling: float
    ) -> Optional[Tuple[float, float]]:
        """Invert load→quantile on an attached surface, if it certifies.

        Returns ``(max_load, rtt_at_max_load_s)`` from the O(1)
        certified path — zero evaluation plans executed — or ``None``
        when no attached surface can certify the answer (no surface for
        the method, level out of range, or the root at/beyond a region
        edge), in which case the caller runs the exact path.
        """
        if self._surfaces is None:
            return None
        surface = self._surfaces.get(self.scenario.cache_key(), method)
        if surface is None:
            return None
        load = surface.invert_load(rtt_bound_s, probability, load_cap=ceiling)
        if load is None:
            return None
        return load, surface.lookup(load, probability)

    def dimension(
        self,
        rtt_bound_s: float,
        probability: Optional[float] = None,
        method: Optional[str] = None,
        load_resolution: float = 1e-3,
        max_load_ceiling: float = 0.98,
    ) -> DimensioningResult:
        """Largest downlink load whose RTT quantile meets ``rtt_bound_s``.

        The RTT quantile is monotonically increasing in the load, so a
        bisection on the load suffices.  With an attached certified
        surface covering the scenario (see :meth:`attach_surface`), the
        bisection runs on the surface's O(1) lookup instead — certified
        within its stored bound, zero evaluation plans executed; when
        the surface cannot certify the answer the exact path below is
        the bit-identical fallback.  Exact evaluations go through the
        shared cache; in particular the RTT at the optimum is reused
        from the bisection instead of rebuilding the model a final
        time.
        """
        if rtt_bound_s <= 0.0:
            raise ParameterError("rtt_bound_s must be positive")
        probability, method = self._resolve(probability, method)
        scenario = self.scenario
        ceiling = scenario.stable_load_ceiling(max_load_ceiling)

        inverted = self._surface_invert(rtt_bound_s, probability, method, ceiling)
        if inverted is not None:
            best_load, rtt_at_best = inverted
            gamers = int(math.floor(scenario.gamers_at_load(best_load)))
            return DimensioningResult(
                rtt_bound_s=rtt_bound_s,
                probability=probability,
                max_load=best_load,
                max_gamers=max(gamers, 0),
                rtt_at_max_load_s=rtt_at_best,
            )

        # The load must at least accommodate one gamer.
        floor_load = scenario.load_for_gamers(1.0)
        floor_load = min(max(floor_load, 1e-4), ceiling / 2.0)

        rtt_floor = self.rtt_quantile(floor_load, probability, method)
        if rtt_floor > rtt_bound_s:
            raise ParameterError(
                f"the RTT bound {rtt_bound_s * 1e3:.1f} ms cannot be met even at the "
                f"minimum load ({rtt_floor * 1e3:.1f} ms with a single gamer)"
            )
        rtt_ceiling = self.rtt_quantile(ceiling, probability, method)
        if rtt_ceiling <= rtt_bound_s:
            best_load = ceiling
        else:
            best_load = float(
                optimize.brentq(
                    lambda load: self.rtt_quantile(load, probability, method)
                    - rtt_bound_s,
                    floor_load,
                    ceiling,
                    xtol=load_resolution,
                )
            )
        gamers = int(math.floor(scenario.gamers_at_load(best_load)))
        # brentq returns a load it has evaluated, so this is a cache hit.
        rtt_at_best = self.rtt_quantile(best_load, probability, method)
        return DimensioningResult(
            rtt_bound_s=rtt_bound_s,
            probability=probability,
            max_load=best_load,
            max_gamers=max(gamers, 0),
            rtt_at_max_load_s=rtt_at_best,
        )

    def admit(
        self,
        rtt_budget_s: float,
        probability: Optional[float] = None,
        method: Optional[str] = None,
        *,
        load: Optional[float] = None,
        num_gamers: Optional[float] = None,
        load_resolution: float = 1e-3,
        max_load_ceiling: float = 0.98,
        exact: bool = False,
    ) -> AdmissionResult:
        """Admission control: can the pipe keep the quantile under budget?

        Inverts the monotone load→quantile relation at ``probability``
        and compares the resulting capacity against the (optional)
        proposed operating point — ``load=`` or ``num_gamers=``, at
        most one.  Unlike :meth:`dimension`, an unmeetable budget is a
        *negative answer* (``admitted=False``, ``max_load=0``), never
        an error: that is the question admission control exists to
        answer.  With an attached certified surface whose region
        brackets the budget, the inversion runs on the O(1) lookup with
        zero evaluation plans executed (``source="surface"``);
        otherwise the exact path answers, bit-identical to
        :meth:`dimension`'s search (``source="exact"``).  ``exact=True``
        skips any attached surface outright.
        """
        if not rtt_budget_s > 0.0:
            raise ParameterError("rtt_budget_s must be positive")
        probability, method = self._resolve(probability, method)
        if load is not None and num_gamers is not None:
            raise ParameterError("pass at most one of load= or num_gamers=")
        scenario = self.scenario
        ceiling = scenario.stable_load_ceiling(max_load_ceiling)
        proposed: Optional[float] = None
        if num_gamers is not None:
            if float(num_gamers) <= 0.0:
                raise ParameterError("num_gamers must be positive")
            proposed = scenario.load_for_gamers(float(num_gamers))
        elif load is not None:
            proposed = float(load)
            if not 0.0 < proposed < 1.0:
                raise ParameterError("load must lie in (0, 1)")

        inverted = (
            None
            if exact
            else self._surface_invert(rtt_budget_s, probability, method, ceiling)
        )
        if inverted is not None:
            best_load, rtt_at_best = inverted
            source = "surface"
        else:
            source = "exact"
            floor_load = scenario.load_for_gamers(1.0)
            floor_load = min(max(floor_load, 1e-4), ceiling / 2.0)
            rtt_floor = self.rtt_quantile(floor_load, probability, method)
            if rtt_floor > rtt_budget_s:
                # Over budget already at the minimum load: nobody is
                # admitted, and the floor RTT documents by how much.
                return AdmissionResult(
                    rtt_budget_s=float(rtt_budget_s),
                    probability=probability,
                    admitted=False,
                    max_load=0.0,
                    max_gamers=0,
                    rtt_at_max_load_s=rtt_floor,
                    proposed_load=proposed,
                    source=source,
                )
            rtt_ceiling = self.rtt_quantile(ceiling, probability, method)
            if rtt_ceiling <= rtt_budget_s:
                best_load = ceiling
            else:
                best_load = float(
                    optimize.brentq(
                        lambda point: self.rtt_quantile(point, probability, method)
                        - rtt_budget_s,
                        floor_load,
                        ceiling,
                        xtol=load_resolution,
                    )
                )
            rtt_at_best = self.rtt_quantile(best_load, probability, method)
        gamers = int(math.floor(scenario.gamers_at_load(best_load)))
        admitted = proposed is None or proposed <= best_load
        return AdmissionResult(
            rtt_budget_s=float(rtt_budget_s),
            probability=probability,
            admitted=admitted,
            max_load=best_load,
            max_gamers=max(gamers, 0),
            rtt_at_max_load_s=rtt_at_best,
            proposed_load=proposed,
            source=source,
        )

    # ------------------------------------------------------------------
    # Discrete-event validation
    # ------------------------------------------------------------------
    def make_simulation(
        self,
        *,
        num_clients: Optional[int] = None,
        load: Optional[float] = None,
        scheduler: str = "fifo",
        gaming_weight: float = 0.5,
        background_rate_bps: float = 0.0,
        seed: Optional[int] = None,
    ):
        """Build a :class:`~repro.netsim.GamingSimulation` of the scenario.

        The client count is given directly or derived from a target
        downlink ``load`` (rounded to the nearest whole gamer).  A
        :class:`MixScenario` builds the multi-server
        :class:`~repro.netsim.MixGamingSimulation` — one burst source
        per component on the shared pipe, the tagged flow measured.
        """
        from .netsim import GamingSimulation, MixGamingSimulation

        if (num_clients is None) == (load is None):
            raise ParameterError("pass exactly one of num_clients= or load=")
        if num_clients is None:
            num_clients = max(int(round(self.scenario.gamers_at_load(float(load)))), 1)
        if isinstance(self.scenario, MixScenario):
            return MixGamingSimulation.from_mix(
                self.scenario,
                num_clients=int(num_clients),
                scheduler=scheduler,
                gaming_weight=gaming_weight,
                background_rate_bps=background_rate_bps,
                seed=seed,
            )
        return GamingSimulation.from_scenario(
            self.scenario,
            num_clients=int(num_clients),
            scheduler=scheduler,
            gaming_weight=gaming_weight,
            background_rate_bps=background_rate_bps,
            seed=seed,
        )

    def simulate(
        self,
        duration_s: float = 30.0,
        *,
        warmup_s: Optional[float] = None,
        num_clients: Optional[int] = None,
        load: Optional[float] = None,
        scheduler: str = "fifo",
        gaming_weight: float = 0.5,
        background_rate_bps: float = 0.0,
        seed: Optional[int] = None,
    ):
        """Run the discrete-event simulator on the scenario.

        Returns the :class:`~repro.netsim.DelayRecorder` with the
        measured upstream / downstream / RTT samples.
        """
        simulation = self.make_simulation(
            num_clients=num_clients,
            load=load,
            scheduler=scheduler,
            gaming_weight=gaming_weight,
            background_rate_bps=background_rate_bps,
            seed=seed,
        )
        if warmup_s is None:
            warmup_s = min(5.0, duration_s / 10.0)
        return simulation.run(duration_s, warmup_s=warmup_s)
