"""Setuptools shim for environments without the `wheel` package.

All project metadata lives in ``pyproject.toml``; this file only exists so
that legacy (non-PEP-517) editable installs keep working offline.
"""

from setuptools import setup

setup()
